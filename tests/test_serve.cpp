// Serving layer: wire protocol, ordered delivery, sharded service
// semantics (determinism across shard counts, named errors, admission
// rejection, graceful shutdown), the stdio transport loop, and the
// telemetry surface (stats breakdowns, trace spans, connection budget).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/instance_io.hpp"
#include "serve/serve.hpp"
#include "serve/socket.hpp"
#include "sim/workloads.hpp"

namespace msrs::serve {
namespace {

// ---------------- wire protocol ----------------

TEST(Wire, ParsesSolveWithSpec) {
  const auto request = parse_request(
      R"({"id":7,"op":"solve","spec":"uniform:n=20,m=4,seed=1","wire":1})");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->op, Op::kSolve);
  EXPECT_EQ(request->spec, "uniform:n=20,m=4,seed=1");
  EXPECT_EQ(request->wire, 1);
  ASSERT_TRUE(request->id.is_number());
  EXPECT_EQ(request->id.as_number(), 7.0);
}

TEST(Wire, ParsesSolveWithInstanceText) {
  const Instance instance = generate(Family::kUniform, 10, 2, 3);
  Json line = Json::object();
  line.set("op", "solve");
  line.set("instance", to_text(instance));
  const auto request = parse_request(line.str());
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->op, Op::kSolve);
  EXPECT_FALSE(request->instance.empty());
  EXPECT_TRUE(request->id.is_null());  // absent id echoes as null
}

TEST(Wire, NamedErrorsForEveryDefect) {
  struct Case {
    const char* line;
    WireError expect;
  };
  const Case cases[] = {
      {"not json at all", WireError::kParseError},
      {"[1,2,3]", WireError::kBadRequest},
      {R"({"id":1})", WireError::kBadRequest},
      {R"({"op":"fly"})", WireError::kUnknownOp},
      {R"({"op":"solve"})", WireError::kBadRequest},
      {R"({"op":"solve","spec":"a","instance":"b"})", WireError::kBadRequest},
      {R"({"op":"solve","spec":"a","wire":1.5})", WireError::kBadRequest},
      {R"({"op":"solve","spec":[1]})", WireError::kBadRequest},
      // Out-of-int-range numbers must be refused, not cast (UB).
      {R"({"op":"solve","spec":"a","budget_ms":3000000000})",
       WireError::kBadRequest},
      {R"({"op":"ping","wire":1e300})", WireError::kBadRequest},
      {R"({"op":"ping","wire":-7})", WireError::kBadRequest},
  };
  for (const Case& test_case : cases) {
    WireError code = WireError::kShuttingDown;
    std::string detail;
    const auto request = parse_request(test_case.line, &code, &detail);
    EXPECT_FALSE(request.has_value()) << test_case.line;
    EXPECT_EQ(wire_error_name(code), wire_error_name(test_case.expect))
        << test_case.line;
    EXPECT_FALSE(detail.empty()) << test_case.line;
  }
}

TEST(Wire, SalvagesIdFromBadRequests) {
  Json id;
  WireError code;
  std::string detail;
  const auto request =
      parse_request(R"({"id":42,"op":"fly"})", &code, &detail, &id);
  EXPECT_FALSE(request.has_value());
  ASSERT_TRUE(id.is_number());
  const std::string response = error_response(id, code, detail);
  EXPECT_NE(response.find("\"id\":42"), std::string::npos);
  EXPECT_NE(response.find("\"error\":\"unknown_op\""), std::string::npos);
}

TEST(Wire, ResponsesAreSingleLines) {
  engine::PortfolioResult result;
  result.solver = "greedy";
  result.makespan = 12.5;
  result.t_bound = 10;
  result.ratio_vs_bound = 1.25;
  result.valid = true;
  for (const std::string& line :
       {solve_response(Json(std::int64_t{1}), result),
        error_response(Json(), WireError::kOverloaded, "queue full"),
        ok_response(Json("abc"), "ping"), version_response(Json())}) {
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    EXPECT_TRUE(json_parse(line).has_value()) << line;
  }
}

// ---------------- ordered delivery ----------------

TEST(OrderedWriter, RestoresReservationOrder) {
  std::vector<std::string> written;
  OrderedWriter writer([&](const std::string& line) {
    written.push_back(line);
  });
  const std::uint64_t a = writer.reserve();
  const std::uint64_t b = writer.reserve();
  const std::uint64_t c = writer.reserve();
  writer.deliver(c, "third");
  writer.deliver(b, "second");
  EXPECT_TRUE(written.empty());  // head still missing
  writer.deliver(a, "first");
  writer.wait_drained();
  EXPECT_EQ(written, (std::vector<std::string>{"first", "second", "third"}));
}

// ---------------- service ----------------

ServiceOptions small_service(unsigned shards) {
  ServiceOptions options;
  options.shards = shards;
  options.budget_ms = 10;  // keep race fields small for test speed
  return options;
}

TEST(Service, AnswersControlOps) {
  Service service(small_service(2));
  EXPECT_NE(service.handle(R"({"id":1,"op":"ping"})").find("\"op\":\"ping\""),
            std::string::npos);
  const std::string version = service.handle(R"({"op":"version"})");
  EXPECT_NE(version.find("\"wire\":1"), std::string::npos);
  EXPECT_NE(version.find("\"instance_format\":1"), std::string::npos);
  const std::string stats = service.handle(R"({"op":"stats"})");
  EXPECT_NE(stats.find("\"shards\":2"), std::string::npos);
}

TEST(Service, SolvesAndCachesRepeats) {
  Service service(small_service(2));
  const std::string line =
      R"({"id":1,"op":"solve","spec":"uniform:n=20,m=4,seed=1"})";
  const std::string first = service.handle(line);
  const std::string second = service.handle(line);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(first.find("\"valid\":true"), std::string::npos);
  // Identical request -> identical body; the repeat was a cache hit.
  EXPECT_EQ(first, second);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solved, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

TEST(Service, IsomorphicInstancesShareOneSolve) {
  // Same shape, different job order: canonical sharding + remapping must
  // serve the second from the first's cache entry on any shard count.
  Service service(small_service(4));
  const Instance instance = generate(Family::kUniform, 16, 3, 9);
  Json a = Json::object();
  a.set("op", "solve");
  a.set("instance", to_text(instance));
  const std::string response_a = service.handle(a.str());
  EXPECT_NE(response_a.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(service.stats().solved, 1u);
  EXPECT_EQ(service.handle(a.str()), response_a);
  EXPECT_EQ(service.stats().solved, 1u);  // served by the cache
}

TEST(Service, MalformedLinesGetNamedErrorsAndServiceSurvives) {
  Service service(small_service(2));
  const std::string error = service.handle("}{ not json");
  EXPECT_NE(error.find("\"error\":\"parse_error\""), std::string::npos);
  const std::string bad_spec =
      service.handle(R"({"op":"solve","spec":"no_such_family:n=5"})");
  EXPECT_NE(bad_spec.find("\"error\":\"bad_spec\""), std::string::npos);
  const std::string bad_instance =
      service.handle(R"({"op":"solve","instance":"msrs 9000"})");
  EXPECT_NE(bad_instance.find("\"error\":\"bad_instance\""),
            std::string::npos);
  // A nesting bomb is a named parse error, not a stack overflow.
  const std::string bomb = "{\"id\":1,\"op\":" + std::string(100000, '[');
  EXPECT_NE(service.handle(bomb).find("\"error\":\"parse_error\""),
            std::string::npos);
  // Still serving after every defect:
  EXPECT_NE(service.handle(R"({"op":"ping"})").find("\"ok\":true"),
            std::string::npos);
}

TEST(Service, WireVersionMismatchIsNamed) {
  Service service(small_service(1));
  const std::string response =
      service.handle(R"({"op":"ping","wire":999})");
  EXPECT_NE(response.find("\"error\":\"wire_version_mismatch\""),
            std::string::npos);
}

TEST(Service, BudgetOverrideBypassesCache) {
  Service service(small_service(1));
  const std::string line =
      R"({"op":"solve","spec":"uniform:n=20,m=4,seed=2","budget_ms":500})";
  EXPECT_NE(service.handle(line).find("\"ok\":true"), std::string::npos);
  EXPECT_NE(service.handle(line).find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(service.stats().solved, 2u);  // solved twice, never cached
  EXPECT_EQ(service.stats().cache_entries, 0u);
}

TEST(Service, RejectsWhenQueueFullInRejectMode) {
  ServiceOptions options = small_service(1);
  options.queue_depth = 1;
  options.reject_when_full = true;
  Service service(options);
  // Occupy the single shard with one slow solve, then burst cheap
  // requests: with depth 1, at most a couple can be admitted while the
  // shard is busy; the rest must be rejected by name — and every
  // callback must still fire exactly once.
  Json big = Json::object();
  big.set("op", "solve");
  big.set("instance", to_text(generate(Family::kUniform, 12000, 8, 1)));
  std::atomic<int> overloaded{0}, answered{0};
  const auto classify = [&](std::string&& response) {
    if (response.find("\"error\":\"overloaded\"") != std::string::npos)
      overloaded.fetch_add(1);
    answered.fetch_add(1);
  };
  service.submit(big.str(), classify);
  constexpr int kBurst = 23;
  const std::string small_line =
      R"({"op":"solve","spec":"uniform:n=10,m=2,seed=1"})";
  for (int i = 0; i < kBurst; ++i) service.submit(small_line, classify);
  EXPECT_TRUE(service.shutdown(std::chrono::seconds(60)));
  EXPECT_EQ(answered.load(), kBurst + 1);
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_EQ(service.stats().rejected,
            static_cast<std::size_t>(overloaded.load()));
}

TEST(Service, ShutdownDrainsAndRefusesNewWork) {
  Service service(small_service(2));
  std::atomic<int> answered{0};
  for (int i = 0; i < 8; ++i)
    service.submit(
        R"({"op":"solve","spec":"uniform:n=30,m=4,seed=)" +
            std::to_string(i + 1) + "\"}",
        [&](std::string&&) { answered.fetch_add(1); });
  EXPECT_TRUE(service.shutdown(std::chrono::seconds(60)));
  EXPECT_EQ(answered.load(), 8);
  const std::string refused = service.handle(R"({"op":"ping"})");
  EXPECT_NE(refused.find("\"error\":\"shutting_down\""), std::string::npos);
}

TEST(Service, ShutdownDrainsLiveSessionsAndRefusesNewSubmits) {
  Service service(small_service(2));
  ASSERT_NE(service
                .handle(
                    R"({"op":"open_session","session":"drain","machines":3})")
                .find("\"ok\":true"),
            std::string::npos);
  // Queue mutations and an in-flight snapshot asynchronously, then shut
  // down: the drain must flush every pending session mutation and answer
  // the snapshot before returning — sessions are not dropped mid-churn.
  std::atomic<int> answered{0};
  for (int i = 0; i < 6; ++i)
    service.submit(R"({"op":"submit_job","session":"drain","class":"c)" +
                       std::to_string(i % 2) + R"(","size":)" +
                       std::to_string(i + 5) + "}",
                   [&](std::string&& response) {
                     EXPECT_NE(response.find("\"ok\":true"),
                               std::string::npos);
                     answered.fetch_add(1);
                   });
  std::string snapshot;
  service.submit(R"({"op":"snapshot","session":"drain"})",
                 [&](std::string&& response) {
                   snapshot = std::move(response);
                   answered.fetch_add(1);
                 });
  EXPECT_TRUE(service.shutdown(std::chrono::seconds(60)));
  EXPECT_EQ(answered.load(), 7);
  EXPECT_NE(snapshot.find("\"jobs\":6"), std::string::npos) << snapshot;
  EXPECT_NE(snapshot.find("\"valid\":true"), std::string::npos) << snapshot;
  // Post-drain the session surface is closed for business, by name.
  const std::string refused = service.handle(
      R"({"op":"submit_job","session":"drain","class":"c0","size":9})");
  EXPECT_NE(refused.find("\"error\":\"shutting_down\""), std::string::npos);
}

// ---------------- stdio transport ----------------

std::string serve_all(const std::string& input, unsigned shards) {
  ServiceOptions options = small_service(shards);
  Service service(options);
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(serve_stdio(service, in, out), 0);
  return out.str();
}

TEST(ServeStdio, ByteIdenticalAcrossShardCounts) {
  std::string input;
  for (int i = 0; i < 40; ++i) {
    // Repeated-corpus traffic: 8 distinct shapes, 5 passes, plus defects
    // sprinkled in — the response stream must not depend on sharding.
    input += R"({"id":)" + std::to_string(i) +
             R"(,"op":"solve","spec":"uniform:n=24,m=4,seed=)" +
             std::to_string(i % 8 + 1) + "\"}\n";
    if (i % 10 == 7) input += "defective line " + std::to_string(i) + "\n";
  }
  input += R"({"op":"stats_is_not_an_op"})" "\n";
  const std::string one = serve_all(input, 1);
  const std::string four = serve_all(input, 4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  // One response line per non-empty request line, in request order.
  EXPECT_EQ(std::count(one.begin(), one.end(), '\n'), 40 + 4 + 1);
}

TEST(ServeStdio, ShutdownOpStopsTheLoop) {
  const std::string output = serve_all(
      "{\"id\":1,\"op\":\"ping\"}\n"
      "{\"id\":2,\"op\":\"shutdown\"}\n"
      "{\"id\":3,\"op\":\"ping\"}\n",  // never read: loop stopped
      2);
  EXPECT_NE(output.find("\"op\":\"shutdown\""), std::string::npos);
  EXPECT_EQ(output.find("\"id\":3"), std::string::npos);
}

// ---------------- telemetry surface ----------------

TEST(Telemetry, StatsOpCarriesBreakdownsAndLatencyDecomposition) {
  Service service(small_service(2));
  const std::string solve_line =
      R"({"op":"solve","spec":"uniform:n=20,m=4,seed=3"})";
  EXPECT_NE(service.handle(solve_line).find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(service.handle(solve_line).find("\"ok\":true"),
            std::string::npos);  // cache hit
  (void)service.handle(R"({"op":"solve","spec":"no_such_family:n=5"})");

  const std::string line = service.handle(R"({"op":"stats"})");
  const std::optional<Json> stats = json_parse(line);
  ASSERT_TRUE(stats.has_value()) << line;

  const Json* depths = stats->find("queue_depths");
  ASSERT_NE(depths, nullptr);
  ASSERT_TRUE(depths->is_array());
  EXPECT_EQ(depths->items().size(), 2u);

  const Json* per_shard = stats->find("shard_requests");
  ASSERT_NE(per_shard, nullptr);
  ASSERT_TRUE(per_shard->is_array());
  double served = 0.0;
  for (const Json& v : per_shard->items()) served += v.as_number();
  EXPECT_EQ(served, 2.0);  // both solve requests, rejections excluded

  // Every wire error code has a key; the bad_spec defect was counted.
  const Json* errors_by_code = stats->find("errors_by_code");
  ASSERT_NE(errors_by_code, nullptr);
  for (const WireError code : kAllWireErrors)
    EXPECT_NE(errors_by_code->find(std::string(wire_error_name(code))),
              nullptr)
        << wire_error_name(code);
  EXPECT_EQ(errors_by_code->find("bad_spec")->as_number(), 1.0);

  // Exactly one race ran (the repeat was a cache hit) and its winner is
  // named in the breakdown.
  const Json* solver_wins = stats->find("solver_wins");
  ASSERT_NE(solver_wins, nullptr);
  double wins = 0.0;
  for (const auto& [name, value] : solver_wins->members())
    wins += value.as_number();
  EXPECT_EQ(wins, 1.0);

  const Json* conns = stats->find("conns");
  ASSERT_NE(conns, nullptr);
  ASSERT_NE(conns->find("accepted"), nullptr);
  ASSERT_NE(conns->find("active"), nullptr);
  ASSERT_NE(conns->find("rejected"), nullptr);

  // Latency decomposition: all five lifecycle stages, each with count and
  // quantiles; the solve requests were measured.
  const Json* latency = stats->find("latency");
  ASSERT_NE(latency, nullptr);
  for (const char* stage : {"admission", "queue", "solve", "write", "total"}) {
    const Json* entry = latency->find(stage);
    ASSERT_NE(entry, nullptr) << stage;
    ASSERT_NE(entry->find("count"), nullptr) << stage;
    EXPECT_EQ(entry->find("count")->as_number(), 2.0) << stage;
    ASSERT_NE(entry->find("p50_us"), nullptr) << stage;
    ASSERT_NE(entry->find("p95_us"), nullptr) << stage;
    ASSERT_NE(entry->find("p99_us"), nullptr) << stage;
    ASSERT_NE(entry->find("mean_us"), nullptr) << stage;
  }
}

TEST(Telemetry, StatsOpCarriesUptimeAndBuildInfo) {
  Service service(small_service(1));
  const std::optional<Json> stats =
      json_parse(service.handle(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.has_value());
  const Json* uptime = stats->find("uptime_seconds");
  ASSERT_NE(uptime, nullptr);
  EXPECT_GE(uptime->as_number(), 0.0);
  const Json* build = stats->find("build_info");
  ASSERT_NE(build, nullptr);
  // The label set matches build_info_labels(), same order, no surprises.
  const std::vector<std::pair<std::string, std::string>> labels =
      build_info_labels();
  ASSERT_EQ(build->members().size(), labels.size());
  for (const auto& [key, value] : labels) {
    const Json* member = build->find(key);
    ASSERT_NE(member, nullptr) << key;
    EXPECT_EQ(member->as_string(), value) << key;
  }
  ASSERT_NE(build->find("wire"), nullptr);
  EXPECT_EQ(build->find("wire")->as_string(),
            std::to_string(kWireVersion));
}

TEST(Telemetry, PrometheusPageLeadsWithBuildInfo) {
  Service service(small_service(1));
  const std::string page = service.metrics_snapshot().prometheus();
  const std::size_t info_at = page.find("msrs_build_info{");
  ASSERT_NE(info_at, std::string::npos);
  EXPECT_NE(page.find("wire=\"" + std::to_string(kWireVersion) + "\""),
            std::string::npos);
  EXPECT_NE(page.find("msrs_serve_uptime_seconds"), std::string::npos);
  // build_info renders before every plain counter series.
  EXPECT_LT(info_at, page.find("msrs_serve_received"));
}

// ---------------- HTTP exposition ----------------

TEST(Http, ParsesRequestHeadWithCrlfAndBareLf) {
  HttpRequest request;
  std::size_t head_len = 0;
  EXPECT_EQ(parse_http_request("GET /metrics HTTP/1.1\r\n", &request,
                               &head_len),
            HttpParse::kIncomplete);  // blank line not buffered yet
  EXPECT_EQ(parse_http_request(
                "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\nTRAILING", &request,
                &head_len),
            HttpParse::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(head_len, std::string("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                          .size());
  EXPECT_EQ(parse_http_request("GET /healthz HTTP/1.0\n\n", &request,
                               &head_len),
            HttpParse::kOk);
  EXPECT_EQ(request.target, "/healthz");
}

TEST(Http, RejectsMalformedRequestLines) {
  HttpRequest request;
  for (const char* head :
       {"NOSPACES\r\n\r\n", "GET /x\r\n\r\n", "GET  HTTP/1.1\r\n\r\n",
        "GET /x SPDY/3\r\n\r\n"}) {
    EXPECT_EQ(parse_http_request(head, &request, nullptr), HttpParse::kBad)
        << head;
  }
}

TEST(Http, ResponseCarriesStatusTypeLengthAndClose) {
  const std::string response = http_response(200, "text/plain", "ok\n");
  EXPECT_EQ(response.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(response.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n\r\nok\n"),
            std::string::npos);
  EXPECT_EQ(http_response(503, "text/plain", "draining\n")
                .find("HTTP/1.1 503 Service Unavailable\r\n"),
            0u);
}

TEST(Http, RoutesObservabilitySurfaces) {
  Service service(small_service(1));
  (void)service.handle(R"({"op":"solve","spec":"uniform:n=16,m=2,seed=1"})");

  const std::string metrics =
      http_route(service, {"GET", "/metrics"});
  EXPECT_EQ(metrics.find("HTTP/1.1 200 OK"), 0u);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("msrs_serve_received"), std::string::npos);
  EXPECT_NE(metrics.find("msrs_build_info{"), std::string::npos);

  const std::string health = http_route(service, {"GET", "/healthz"});
  EXPECT_EQ(health.find("HTTP/1.1 200 OK"), 0u);
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);

  const std::string recorder =
      http_route(service, {"GET", "/recorder?canonical=1"});
  EXPECT_EQ(recorder.find("HTTP/1.1 200 OK"), 0u);
  EXPECT_NE(recorder.find("application/jsonl"), std::string::npos);
  EXPECT_NE(recorder.find("\"canonical\":true"), std::string::npos);

  const std::string watchdog = http_route(service, {"GET", "/watchdog"});
  EXPECT_EQ(watchdog.find("HTTP/1.1 200 OK"), 0u);
  EXPECT_NE(watchdog.find("\"thresholds\""), std::string::npos);

  EXPECT_EQ(http_route(service, {"GET", "/nope"}).find("HTTP/1.1 404"), 0u);
  EXPECT_EQ(http_route(service, {"POST", "/metrics"}).find("HTTP/1.1 405"),
            0u);
}

TEST(Http, HealthzReports503WhileDrainingAndRecorder404WhenDisabled) {
  ServiceOptions options = small_service(1);
  options.recorder_events = 0;
  Service service(options);
  EXPECT_EQ(http_route(service, {"GET", "/recorder"}).find("HTTP/1.1 404"),
            0u);
  service.shutdown(std::chrono::seconds(5));
  EXPECT_EQ(http_route(service, {"GET", "/healthz"}).find("HTTP/1.1 503"),
            0u);
}

TEST(Telemetry, EveryErrorResponseIncrementsItsNamedCounter) {
  Service service(small_service(1));
  (void)service.handle("}{ not json");                       // parse_error
  (void)service.handle("}{ not json");                       // parse_error
  (void)service.handle(R"({"op":"fly"})");                   // unknown_op
  (void)service.handle(R"({"op":"ping","wire":999})");       // mismatch
  (void)service.handle(R"({"op":"solve","instance":"x"})");  // bad_instance

  const std::optional<Json> stats =
      json_parse(service.handle(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.has_value());
  const Json* by_code = stats->find("errors_by_code");
  ASSERT_NE(by_code, nullptr);
  EXPECT_EQ(by_code->find("parse_error")->as_number(), 2.0);
  EXPECT_EQ(by_code->find("unknown_op")->as_number(), 1.0);
  EXPECT_EQ(by_code->find("wire_version_mismatch")->as_number(), 1.0);
  EXPECT_EQ(by_code->find("bad_instance")->as_number(), 1.0);
  EXPECT_EQ(by_code->find("overloaded")->as_number(), 0.0);
  // The aggregate matches the sum of the per-code counters.
  double sum = 0.0;
  for (const auto& [name, value] : by_code->members())
    sum += value.as_number();
  EXPECT_EQ(stats->find("errors")->as_number(), sum);
}

TEST(Telemetry, TraceSinkEmitsValidSpansWithProvenance) {
  const std::string path = ::testing::TempDir() + "msrs_serve_trace.jsonl";
  {
    ServiceOptions options = small_service(1);
    options.trace.path = path;
    options.trace.sample_every = 1;  // every request
    options.trace.slow_ms = 0.0;     // quiet slow log under sanitizers
    Service service(options);
    const std::string solve_line =
        R"({"op":"solve","spec":"uniform:n=20,m=4,seed=5"})";
    (void)service.handle(solve_line);  // miss
    (void)service.handle(solve_line);  // hit
    (void)service.handle(R"({"op":"solve","spec":"no_such_family:n=5"})");
    service.shutdown(std::chrono::seconds(30));
  }
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::string line;
  int spans = 0;
  bool saw_miss = false, saw_hit = false, saw_error = false;
  while (std::getline(file, line)) {
    const std::optional<Json> span = json_parse(line);
    ASSERT_TRUE(span.has_value()) << line;
    ++spans;
    const Json* cache = span->find("cache");
    const Json* error = span->find("error");
    const Json* total = span->find("total_us");
    ASSERT_NE(total, nullptr);
    EXPECT_GE(total->as_number(), 0.0);
    if (cache != nullptr && cache->as_string() == "miss") {
      saw_miss = true;
      // A miss span carries the winning solver's name.
      ASSERT_NE(span->find("solver"), nullptr);
      EXPECT_FALSE(span->find("solver")->as_string().empty());
    }
    if (cache != nullptr && cache->as_string() == "hit") saw_hit = true;
    if (error != nullptr && error->as_string() == "bad_spec")
      saw_error = true;
  }
  EXPECT_EQ(spans, 3);
  EXPECT_TRUE(saw_miss);
  EXPECT_TRUE(saw_hit);
  EXPECT_TRUE(saw_error);
  std::remove(path.c_str());
}

TEST(Telemetry, PrometheusPageExposesServiceSeries) {
  Service service(small_service(1));
  (void)service.handle(R"({"op":"solve","spec":"uniform:n=16,m=2,seed=1"})");
  const std::string page = service.metrics_snapshot().prometheus();
  EXPECT_NE(page.find("# TYPE msrs_serve_received counter"),
            std::string::npos);
  EXPECT_NE(page.find("msrs_serve_received 1"), std::string::npos);
  EXPECT_NE(page.find("# TYPE msrs_serve_latency_total_us histogram"),
            std::string::npos);
  EXPECT_NE(page.find("msrs_serve_latency_total_us_count 1"),
            std::string::npos);
  EXPECT_NE(page.find("msrs_serve_queue_depth_0"), std::string::npos);
}

TEST(ServeSocket, ConnectionBudgetShedsExtraClients) {
  if (!socket_transport_available())
    GTEST_SKIP() << "no socket transport on this platform";
  const std::string path = ::testing::TempDir() + "msrs_budget.sock";
  ServiceOptions options = small_service(1);
  Service service(options);
  SocketOptions socket_options;
  socket_options.max_connections = 1;
  std::thread server([&service, &path, socket_options] {
    std::string error;
    EXPECT_EQ(serve_socket(service, path, &error, socket_options), 0)
        << error;
  });

  SocketClient first;
  std::string error;
  bool connected = false;
  for (int i = 0; i < 500 && !connected; ++i) {
    connected = first.connect(path, &error);
    if (!connected)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(connected) << error;
  std::string line;
  ASSERT_TRUE(first.send_line(R"({"id":1,"op":"ping"})"));
  ASSERT_TRUE(first.recv_line(&line));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);

  // Over budget: the second client gets one named overloaded line, then
  // the connection closes.
  SocketClient second;
  ASSERT_TRUE(second.connect(path, &error)) << error;
  ASSERT_TRUE(second.recv_line(&line));
  EXPECT_NE(line.find("\"error\":\"overloaded\""), std::string::npos);
  EXPECT_FALSE(second.recv_line(&line));  // EOF

  ASSERT_TRUE(first.send_line(R"({"op":"shutdown"})"));
  ASSERT_TRUE(first.recv_line(&line));
  server.join();

  const obs::MetricsSnapshot snapshot = service.metrics_snapshot();
  EXPECT_EQ(snapshot.counter_or("serve.conns.accepted"), 1u);
  EXPECT_EQ(snapshot.counter_or("serve.conns.rejected"), 1u);
  EXPECT_EQ(snapshot.gauge_or("serve.conns.active"), 0);
}

// ---------------- stop flag ----------------

// Regression: the stop flag used to be a `volatile sig_atomic_t`, which is
// async-signal-safe but NOT thread-safe — request_stop() from one thread
// racing stop_requested() polls on the transport loop threads was a data
// race (caught by TSan). The flag is now std::atomic<int>; this test
// hammers it from several threads with a real signal delivery in the mix
// so a regression shows up again under -fsanitize=thread.
TEST(StopFlag, ConcurrentRequestAndSignalDelivery) {
  reset_stop();
  install_stop_signals();

  std::atomic<int> observers_done{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&observers_done] {
      while (!stop_requested()) std::this_thread::yield();
      observers_done.fetch_add(1);
    });
  }

  std::thread requester([] { request_stop(); });
  std::raise(SIGTERM);  // handler path: g_stop store from signal context

  requester.join();
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(observers_done.load(), 4);
  EXPECT_TRUE(stop_requested());

  reset_stop();
  EXPECT_FALSE(stop_requested());
}

}  // namespace
}  // namespace msrs::serve
