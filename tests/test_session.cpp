// Online sessions: the SessionEngine differential harness (>=1000 fuzzed
// churn mutations, each snapshot pinned against an independent full
// portfolio re-solve and a from-scratch canonical form), the wire session
// lifecycle with named errors, snapshot byte-identity across shard counts
// and across transports (stdio vs TCP), the serve.session.* telemetry
// surface, and the per-session admission fairness gate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/instance_io.hpp"
#include "core/validate.hpp"
#include "engine/session.hpp"
#include "serve/serve.hpp"
#include "sim/arrivals.hpp"
#include "sim/workloads.hpp"

namespace msrs::engine {
namespace {

PortfolioOptions fast_portfolio() {
  PortfolioOptions options;
  options.budget_ms = 5;  // keep the race fields small for test speed
  options.threads = 1;
  return options;
}

// Replays one churn trace through a SessionEngine, snapshotting after
// EVERY mutation and pinning each snapshot against the two independent
// oracles: a from-scratch canonical form (the incremental maintenance must
// be exact) and a fresh full portfolio re-solve (the repair path must be
// schedule-valid and makespan-equal). Returns the mutation count.
std::size_t replay_differential(const ChurnSpec& spec) {
  SessionOptions options;
  options.portfolio = fast_portfolio();
  SessionEngine session(spec.machines, SolverRegistry::default_registry(),
                        options);
  PortfolioSolver oracle(SolverRegistry::default_registry(), fast_portfolio());
  std::size_t mutations = 0;
  for (const ChurnEvent& event : generate_churn(spec)) {
    if (event.kind == ChurnEvent::Kind::kSubmit) {
      const std::uint64_t id =
          session.submit("c" + std::to_string(event.cls), event.size);
      // Ids are a monotone counter: the trace's predicted target holds.
      EXPECT_EQ(id, static_cast<std::uint64_t>(event.target));
    } else if (event.kind == ChurnEvent::Kind::kCancel) {
      EXPECT_TRUE(session.cancel(static_cast<std::uint64_t>(event.target)))
          << "trace cancels only alive jobs";
    } else {
      continue;  // the trace's own snapshots are subsumed: we snapshot below
    }
    ++mutations;

    const SessionSnapshot& snap = session.snapshot();
    if (session.jobs_alive() == 0) {
      EXPECT_EQ(snap.source, SnapshotSource::kEmpty);
      EXPECT_EQ(snap.result.makespan, 0.0);
      EXPECT_TRUE(snap.result.valid);
      continue;
    }
    // Oracle 1: the incrementally maintained canonical form must equal the
    // from-scratch one (key, shape, and the job order of the bijection).
    const CanonicalForm fresh = canonical_form(snap.instance);
    EXPECT_EQ(snap.form.key, fresh.key) << "mutation " << mutations;
    EXPECT_TRUE(snap.form.same_shape(fresh)) << "mutation " << mutations;
    EXPECT_EQ(snap.form.order, fresh.order) << "mutation " << mutations;
    // Oracle 2: the repair path's schedule is valid on the materialized
    // instance and makespan-equal to an independent full re-solve.
    EXPECT_TRUE(snap.result.valid);
    EXPECT_TRUE(validate(snap.instance, snap.result.schedule).ok())
        << "mutation " << mutations;
    const PortfolioResult full = oracle.solve(snap.instance);
    EXPECT_TRUE(full.valid);
    EXPECT_EQ(snap.result.makespan, full.makespan)
        << "mutation " << mutations << " (" << snapshot_source_name(snap.source)
        << " vs oracle " << full.solver << ")";
    EXPECT_EQ(snap.result.t_bound, full.t_bound) << "mutation " << mutations;
  }
  return mutations;
}

TEST(SessionDifferential, PoissonChurnPinnedAgainstFullResolve) {
  std::size_t mutations = 0;
  for (const std::uint64_t seed : {1, 2}) {
    ChurnSpec spec;
    spec.kind = ArrivalKind::kPoisson;
    spec.events = 250;
    spec.classes = 4;
    spec.machines = 4;
    spec.max_size = 20;  // few distinct sizes: shapes repeat, the memo hits
    spec.cancel = 0.4;
    spec.seed = seed;
    mutations += replay_differential(spec);
  }
  EXPECT_GE(mutations, 500u);
}

TEST(SessionDifferential, BurstyOnOffChurnPinnedAgainstFullResolve) {
  std::size_t mutations = 0;
  for (const std::uint64_t seed : {3, 4}) {
    ChurnSpec spec;
    spec.kind = ArrivalKind::kOnOff;
    spec.events = 250;
    spec.classes = 5;
    spec.machines = 3;
    spec.max_size = 30;
    spec.cancel = 0.45;  // heavy churn: deep cancel chains, empty refills
    spec.burst_len = 16;
    spec.seed = seed;
    mutations += replay_differential(spec);
  }
  // Both differential tests together replay >= 1000 fuzzed mutations.
  EXPECT_GE(mutations, 500u);
}

TEST(SessionEngine, CancelUndoingSubmitIsRepairedFromTheMemo) {
  SessionOptions options;
  options.portfolio = fast_portfolio();
  SessionEngine session(3, SolverRegistry::default_registry(), options);
  session.submit("a", 5);
  session.submit("a", 7);
  const double makespan = session.snapshot().result.makespan;  // resolve
  EXPECT_EQ(session.stats().fallbacks, 1u);
  const std::uint64_t extra = session.submit("b", 9);
  (void)session.snapshot();  // new shape: another full resolve
  EXPECT_EQ(session.stats().fallbacks, 2u);
  EXPECT_TRUE(session.cancel(extra));  // back to the first shape
  const SessionSnapshot& repaired = session.snapshot();
  EXPECT_EQ(repaired.source, SnapshotSource::kRepair);
  EXPECT_EQ(session.stats().repairs, 1u);
  EXPECT_EQ(session.stats().fallbacks, 2u);  // no third race
  EXPECT_EQ(repaired.result.makespan, makespan);
  EXPECT_TRUE(validate(repaired.instance, repaired.result.schedule).ok());
}

TEST(SessionEngine, OracleModeNeverRepairs) {
  SessionOptions options;
  options.portfolio = fast_portfolio();
  options.repair = false;
  SessionEngine session(2, SolverRegistry::default_registry(), options);
  const std::uint64_t job = session.submit("a", 4);
  (void)session.snapshot();
  EXPECT_TRUE(session.cancel(job));
  session.submit("a", 4);  // identical shape again
  (void)session.snapshot();
  EXPECT_EQ(session.stats().fallbacks, 2u);  // re-solved, never remapped
  EXPECT_EQ(session.stats().repairs, 0u);
}

TEST(SessionEngine, EmptySessionsAndCancelRulesAreExact) {
  SessionEngine session(4);
  const SessionSnapshot& empty = session.snapshot();
  EXPECT_EQ(empty.source, SnapshotSource::kEmpty);
  EXPECT_EQ(empty.result.solver, "empty");
  EXPECT_TRUE(empty.result.valid);
  EXPECT_EQ(session.jobs_alive(), 0u);
  EXPECT_FALSE(session.cancel(0));   // never assigned
  EXPECT_FALSE(session.cancel(99));  // out of range
  const std::uint64_t a = session.submit("x", 3);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(session.submit("y", 5), 1u);  // monotone ids
  EXPECT_TRUE(session.cancel(a));
  EXPECT_FALSE(session.cancel(a));  // double-cancel changes nothing
  EXPECT_EQ(session.jobs_alive(), 1u);
  EXPECT_EQ(session.classes_alive(), 1u);  // class "x" is empty now
  EXPECT_TRUE(session.cancel(1));
  EXPECT_EQ(session.snapshot().source, SnapshotSource::kEmpty);
}

}  // namespace
}  // namespace msrs::engine

namespace msrs::serve {
namespace {

ServiceOptions session_service(unsigned shards) {
  ServiceOptions options;
  options.shards = shards;
  options.budget_ms = 10;  // keep race fields small for test speed
  return options;
}

// ---------------- wire schema of the session ops ----------------

TEST(SessionWire, NamedErrorsForSessionDefects) {
  struct Case {
    const char* line;
    WireError expect;
  };
  const Case cases[] = {
      {R"({"op":"open_session"})", WireError::kBadRequest},
      {R"({"op":"open_session","session":""})", WireError::kBadRequest},
      {R"({"op":"open_session","session":"s","machines":0})",
       WireError::kBadRequest},
      {R"({"op":"submit_job","session":"s"})", WireError::kBadRequest},
      {R"({"op":"submit_job","session":"s","class":"c"})",
       WireError::kBadRequest},  // size absent (defaults 0 < 1)
      {R"({"op":"submit_job","session":"s","class":"c","size":-3})",
       WireError::kBadRequest},
      {R"({"op":"cancel_job","session":"s"})", WireError::kBadRequest},
      {R"({"op":"cancel_job","session":"s","job":-1})", WireError::kBadRequest},
      {R"({"op":"snapshot"})", WireError::kBadRequest},
      {R"({"op":"close_session","session":17})", WireError::kBadRequest},
  };
  for (const Case& test_case : cases) {
    WireError code = WireError::kShuttingDown;
    std::string detail;
    const auto request = parse_request(test_case.line, &code, &detail);
    EXPECT_FALSE(request.has_value()) << test_case.line;
    EXPECT_EQ(wire_error_name(code), wire_error_name(test_case.expect))
        << test_case.line;
    EXPECT_FALSE(detail.empty()) << test_case.line;
  }
  const auto good = parse_request(
      R"({"id":1,"op":"submit_job","session":"s1","class":"r","size":12})");
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->op, Op::kSubmitJob);
  EXPECT_EQ(good->session, "s1");
  EXPECT_EQ(good->job_class, "r");
  EXPECT_EQ(good->size, 12);
}

// ---------------- service lifecycle ----------------

TEST(SessionService, LifecycleAndNamedErrors) {
  Service service(session_service(2));
  const auto expect_contains = [&](const std::string& line,
                                   const char* token) {
    EXPECT_NE(service.handle(line).find(token), std::string::npos) << line;
  };
  expect_contains(R"({"op":"open_session","session":"s1","machines":4})",
                  "\"op\":\"open_session\"");
  expect_contains(R"({"op":"open_session","session":"s1"})",
                  "\"error\":\"bad_request\"");  // already open
  expect_contains(R"({"op":"submit_job","session":"s1","class":"a","size":5})",
                  "\"job\":0");
  expect_contains(R"({"op":"submit_job","session":"s1","class":"b","size":9})",
                  "\"job\":1");
  expect_contains(R"({"op":"cancel_job","session":"s1","job":0})",
                  "\"cancelled\":true");
  expect_contains(R"({"op":"cancel_job","session":"s1","job":0})",
                  "\"error\":\"unknown_job\"");  // double cancel
  expect_contains(R"({"op":"cancel_job","session":"s1","job":99})",
                  "\"error\":\"unknown_job\"");
  expect_contains(R"({"op":"snapshot","session":"s1"})", "\"jobs\":1");
  // Unknown sessions are named, for every session op.
  for (const char* line :
       {R"({"op":"submit_job","session":"ghost","class":"a","size":1})",
        R"({"op":"cancel_job","session":"ghost","job":0})",
        R"({"op":"snapshot","session":"ghost"})",
        R"({"op":"close_session","session":"ghost"})"})
    expect_contains(line, "\"error\":\"unknown_session\"");
  expect_contains(R"({"op":"close_session","session":"s1"})",
                  "\"op\":\"close_session\"");
  expect_contains(R"({"op":"snapshot","session":"s1"})",
                  "\"error\":\"unknown_session\"");  // state dropped
  // A closed name is reusable, with fresh state.
  expect_contains(R"({"op":"open_session","session":"s1"})",
                  "\"op\":\"open_session\"");
  expect_contains(R"({"op":"snapshot","session":"s1"})", "\"jobs\":0");
}

TEST(SessionService, SessionLimitIsNamedAndReleasedOnClose) {
  ServiceOptions options = session_service(4);
  options.session_limit = 2;
  Service service(options);
  EXPECT_NE(service.handle(R"({"op":"open_session","session":"a"})")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(service.handle(R"({"op":"open_session","session":"b"})")
                .find("\"ok\":true"),
            std::string::npos);
  // The cap is global across shards, and the breach is a named error.
  EXPECT_NE(service.handle(R"({"op":"open_session","session":"c"})")
                .find("\"error\":\"session_limit\""),
            std::string::npos);
  EXPECT_NE(service.handle(R"({"op":"close_session","session":"a"})")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(service.handle(R"({"op":"open_session","session":"c"})")
                .find("\"ok\":true"),
            std::string::npos);
}

TEST(SessionService, SnapshotCarriesRepairProvenance) {
  Service service(session_service(1));
  (void)service.handle(R"({"op":"open_session","session":"s","machines":3})");
  const std::string empty = service.handle(R"({"op":"snapshot","session":"s"})");
  EXPECT_NE(empty.find("\"solver\":\"empty\""), std::string::npos);
  EXPECT_NE(empty.find("\"source\":\"empty\""), std::string::npos);
  EXPECT_NE(empty.find("\"valid\":true"), std::string::npos);
  (void)service.handle(
      R"({"op":"submit_job","session":"s","class":"a","size":6})");
  EXPECT_NE(service.handle(R"({"op":"snapshot","session":"s"})")
                .find("\"source\":\"resolve\""),
            std::string::npos);
  (void)service.handle(
      R"({"op":"submit_job","session":"s","class":"b","size":4})");
  (void)service.handle(R"({"op":"snapshot","session":"s"})");
  // Cancel undoes the submit: the shape was seen before, so the session
  // repairs from its memo instead of racing the portfolio again.
  (void)service.handle(R"({"op":"cancel_job","session":"s","job":1})");
  EXPECT_NE(service.handle(R"({"op":"snapshot","session":"s"})")
                .find("\"source\":\"repair\""),
            std::string::npos);

  const obs::MetricsSnapshot snapshot = service.metrics_snapshot();
  EXPECT_EQ(snapshot.counter_or("serve.session.repairs"), 2u);  // empty+remap
  EXPECT_EQ(snapshot.counter_or("serve.session.fallbacks"), 2u);
}

// ---------------- telemetry surface ----------------

TEST(SessionService, StatsOpAndMetricsCoverSessions) {
  Service service(session_service(2));
  (void)service.handle(R"({"op":"open_session","session":"s"})");
  (void)service.handle(
      R"({"op":"submit_job","session":"s","class":"a","size":2})");
  (void)service.handle(
      R"({"op":"submit_job","session":"s","class":"a","size":7})");
  (void)service.handle(R"({"op":"cancel_job","session":"s","job":0})");
  (void)service.handle(R"({"op":"snapshot","session":"s"})");

  const std::optional<Json> stats =
      json_parse(service.handle(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.has_value());
  const Json* sessions = stats->find("sessions");
  ASSERT_NE(sessions, nullptr);
  for (const char* key : {"active", "opened", "closed", "submits", "cancels",
                          "snapshots", "repairs", "fallbacks"})
    ASSERT_NE(sessions->find(key), nullptr) << key;
  EXPECT_EQ(sessions->find("active")->as_number(), 1.0);
  EXPECT_EQ(sessions->find("opened")->as_number(), 1.0);
  EXPECT_EQ(sessions->find("submits")->as_number(), 2.0);
  EXPECT_EQ(sessions->find("cancels")->as_number(), 1.0);
  EXPECT_EQ(sessions->find("snapshots")->as_number(), 1.0);

  (void)service.handle(R"({"op":"close_session","session":"s"})");
  const obs::MetricsSnapshot snapshot = service.metrics_snapshot();
  EXPECT_EQ(snapshot.counter_or("serve.session.closed"), 1u);
  EXPECT_EQ(snapshot.gauge_or("serve.session.active"), 0);
}

// ---------------- byte identity across shard counts ----------------

std::string serve_all(const std::string& input, unsigned shards) {
  Service service(session_service(shards));
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(serve_stdio(service, in, out), 0);
  return out.str();
}

// Emits the churn-trace request stream of a spec through the real driver
// path (`drive --churn --emit`).
std::string emit_churn(const std::string& spec) {
  const std::string path = ::testing::TempDir() + "msrs_churn_trace.jsonl";
  DriveOptions options;
  options.churn = spec;
  options.emit = path;
  std::string error;
  const std::optional<DriveReport> report = drive(options, &error);
  EXPECT_TRUE(report.has_value()) << error;
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

TEST(SessionServe, SnapshotBytesIdenticalAcrossShardCounts) {
  const std::string input = emit_churn(
      "poisson:events=120,classes=5,m=4,max=60,cancel=0.35,snap=6,seed=11");
  ASSERT_FALSE(input.empty());
  const std::string one = serve_all(input, 1);
  EXPECT_FALSE(one.empty());
  // The session memo is session-local and routing is by session name, so
  // the full response stream — including repair/resolve provenance — is a
  // pure function of the mutation history, not of the shard layout.
  EXPECT_EQ(one, serve_all(input, 2));
  EXPECT_EQ(one, serve_all(input, 4));
  EXPECT_NE(one.find("\"source\":"), std::string::npos);
  EXPECT_EQ(one.find("\"ok\":false"), std::string::npos);  // clean replay
}

// ---------------- byte identity across transports ----------------

// Runs serve_tcp on an ephemeral loopback port in a background thread
// (same shape as the fixture in test_tcp.cpp).
class TcpChurnServer {
 public:
  explicit TcpChurnServer(ServiceOptions service_options)
      : service_(service_options) {
    std::promise<std::uint16_t> promise;
    std::future<std::uint16_t> future = promise.get_future();
    TcpOptions options;
    options.tick_ms = 20;
    options.on_listen = [&promise](std::uint16_t p) { promise.set_value(p); };
    thread_ = std::thread([this, options] {
      std::string error;
      code_ = serve_tcp(service_, "127.0.0.1:0", &error, options);
      error_ = error;
    });
    port_ = future.get();
  }
  ~TcpChurnServer() { stop(); }
  void stop() {
    if (stopped_) return;
    stopped_ = true;
    request_stop();
    thread_.join();
    reset_stop();
    EXPECT_EQ(code_, 0) << error_;
  }
  std::string target() const { return "127.0.0.1:" + std::to_string(port_); }

 private:
  Service service_;
  std::thread thread_;
  std::uint16_t port_ = 0;
  int code_ = -1;
  std::string error_;
  bool stopped_ = false;
};

TEST(SessionServe, SnapshotBytesIdenticalAcrossTransports) {
  if (!tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  const std::string spec =
      "onoff:events=80,classes=4,m=3,max=40,cancel=0.4,snap=8,blen=12,seed=9";
  // Reference: the same trace through the stdio transport.
  const std::string expected = serve_all(emit_churn(spec), 2);
  ASSERT_FALSE(expected.empty());

  // Live: `drive --churn --churn-out` against a TCP service. Connection 0
  // replays session "churn-0" — exactly the emitted stream.
  TcpChurnServer server(session_service(2));
  const std::string capture_path =
      ::testing::TempDir() + "msrs_churn_capture.jsonl";
  DriveOptions options;
  options.tcp = server.target();
  options.churn = spec;
  options.churn_out = capture_path;
  options.conns = 1;
  std::string error;
  const std::optional<DriveReport> report = drive(options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->transport_errors, 0u);
  server.stop();

  std::ifstream file(capture_path);
  std::stringstream captured;
  captured << file.rdbuf();
  std::remove(capture_path.c_str());
  EXPECT_EQ(captured.str(), expected);
}

// ---------------- admission fairness ----------------

TEST(SessionService, RejectModeShedsChurnBurstsByName) {
  ServiceOptions options = session_service(1);
  options.reject_when_full = true;
  options.session_queue_budget = 2;
  Service service(options);
  EXPECT_NE(service.handle(R"({"op":"open_session","session":"chatty"})")
                .find("\"ok\":true"),
            std::string::npos);
  // Occupy the single shard with one slow solve, then burst session
  // mutations: at most budget+1 can be queued/processing, the rest must be
  // shed with the named overloaded error — and every callback still fires.
  Json big = Json::object();
  big.set("op", "solve");
  big.set("instance", to_text(generate(Family::kUniform, 12000, 8, 1)));
  std::atomic<int> overloaded{0}, answered{0};
  const auto classify = [&](std::string&& response) {
    if (response.find("\"error\":\"overloaded\"") != std::string::npos)
      overloaded.fetch_add(1);
    answered.fetch_add(1);
  };
  service.submit(big.str(), classify);
  constexpr int kBurst = 24;
  for (int i = 0; i < kBurst; ++i)
    service.submit(
        R"({"op":"submit_job","session":"chatty","class":"a","size":1})",
        classify);
  EXPECT_TRUE(service.shutdown(std::chrono::seconds(60)));
  EXPECT_EQ(answered.load(), kBurst + 1);
  // With the shard busy, at most a couple of burst ops fit the budget; the
  // rest must be shed by name (>= 1 keeps this robust to scheduling luck).
  EXPECT_GE(overloaded.load(), 1);
}

TEST(SessionService, ChattySessionCannotStarveSolveTraffic) {
  // Blocking mode: the budget backpressures the chatty producer instead of
  // letting it occupy the whole shard queue, so concurrent solve traffic
  // keeps completing. The assertion is liveness: everything is answered
  // and the run terminates (with no gate, the producer could enqueue its
  // whole flood ahead of every solve).
  ServiceOptions options = session_service(1);
  options.session_queue_budget = 4;
  Service service(options);
  EXPECT_NE(service.handle(R"({"op":"open_session","session":"chatty"})")
                .find("\"ok\":true"),
            std::string::npos);
  std::atomic<int> session_answers{0};
  std::atomic<int> solve_ok{0};
  constexpr int kFlood = 200;
  std::thread chatty([&] {
    for (int i = 0; i < kFlood; ++i)
      service.submit(
          R"({"op":"submit_job","session":"chatty","class":"a","size":1})",
          [&](std::string&& response) {
            EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
            session_answers.fetch_add(1);
          });
  });
  for (int i = 0; i < 10; ++i)
    service.submit(
        R"({"op":"solve","spec":"uniform:n=20,m=4,seed=)" +
            std::to_string(i + 1) + "\"}",
        [&](std::string&& response) {
          if (response.find("\"ok\":true") != std::string::npos)
            solve_ok.fetch_add(1);
        });
  chatty.join();
  EXPECT_TRUE(service.shutdown(std::chrono::seconds(60)));
  EXPECT_EQ(session_answers.load(), kFlood);
  EXPECT_EQ(solve_ok.load(), 10);
}

}  // namespace
}  // namespace msrs::serve
