# Drives msrs_engine_cli end to end: generate -> corpus file -> solve.
# Checks generation determinism (two runs, byte-identical output), the
# corpus round-trip through `solve`, and that a bad spec is refused.
# Invoked by ctest with -DCLI=<binary> -DWORKDIR=<scratch dir>.
file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
  COMMAND ${CLI} generate uniform:n=40,m=4,seed=9 satellite:n=30,m=5,seed=2
          --out=${WORKDIR}/corpus_a.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed with exit code ${rc}")
endif()

execute_process(
  COMMAND ${CLI} generate uniform:n=40,m=4,seed=9 satellite:n=30,m=5,seed=2
          --out=${WORKDIR}/corpus_b.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "second generate failed with exit code ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORKDIR}/corpus_a.txt ${WORKDIR}/corpus_b.txt
  RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR "generate is not deterministic: corpora differ")
endif()

execute_process(
  COMMAND ${CLI} solve --file=${WORKDIR}/corpus_a.txt
  OUTPUT_VARIABLE out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "solve failed with exit code ${rc}")
endif()
if(NOT out MATCHES "batch: 2 instances")
  message(FATAL_ERROR "solve did not report the 2 corpus instances:\n${out}")
endif()

execute_process(
  COMMAND ${CLI} generate no_such_family:n=5
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "generate accepted an unknown family")
endif()
if(NOT err MATCHES "unknown family 'no_such_family'")
  message(FATAL_ERROR "bad-spec error did not name the family:\n${err}")
endif()

execute_process(
  COMMAND ${CLI} sweep "families=uniform,unit;n=20;m=4;seeds=2"
  OUTPUT_VARIABLE sweep_a RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sweep failed with exit code ${rc}")
endif()
execute_process(
  COMMAND ${CLI} sweep "families=uniform,unit;n=20;m=4;seeds=2" --threads=4
  OUTPUT_VARIABLE sweep_b RESULT_VARIABLE rc ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "threaded sweep failed with exit code ${rc}")
endif()
if(NOT sweep_a STREQUAL sweep_b)
  message(FATAL_ERROR "sweep report differs across thread counts")
endif()
