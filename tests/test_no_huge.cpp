// Tests for Algorithm_no_huge (Section 3.1, Lemma 12).
#include <gtest/gtest.h>

#include "algo/no_huge.hpp"
#include "core/lower_bounds.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace msrs {
namespace {

// Generates an instance guaranteed to have no huge jobs relative to its own
// combined lower bound: all jobs <= max_size but total load >= m * max_size
// so T >= (4/3) max job... we simply retry until the precondition holds.
Instance no_huge_instance(Family family, int jobs, int machines,
                          std::uint64_t seed) {
  for (std::uint64_t attempt = 0; attempt < 50; ++attempt) {
    Instance instance = generate(family, jobs, machines, seed + attempt * 977);
    const Time T = lower_bounds(instance).combined;
    if (4 * instance.max_size() <= 3 * T) return instance;
  }
  ADD_FAILURE() << "could not build a no-huge instance";
  return Instance(1, {{1}});
}

TEST(NoHuge, MidPairsFillMachines) {
  // Two classes in (T/2, 3/4 T): step 2 shape.
  Instance instance = test::make_instance(
      2, {{40, 25}, {40, 22}, {20, 20}, {15, 10}});
  // p(J)=192, m=2 -> area 96; max class 65; pairs: sizes 40,40,25 -> 40+40=80
  const AlgoResult result = no_huge(instance);
  ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                    result.lower_bound, 3, 2));
}

TEST(NoHuge, HeavyQuadruple) {
  // Four classes with load >= 3/4 T on 3 machines: exercises step 3.
  Instance instance = test::make_instance(
      3, {{45, 45}, {44, 44}, {43, 43}, {42, 42}, {10, 10, 10, 8}});
  const AlgoResult result = no_huge(instance);
  ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                    result.lower_bound, 3, 2));
}

TEST(NoHuge, RejectsHugeJobs) {
  // A single class with one job ~ T: huge => must be rejected.
  Instance instance = test::make_instance(
      2, {{100}, {10, 10}, {10, 5}, {20, 20}});
  const Time T = lower_bounds(instance).combined;
  ASSERT_GT(4 * instance.max_size(), 3 * T);
  EXPECT_THROW(no_huge(instance), std::invalid_argument);
}

struct SweepParam {
  Family family;
  int jobs;
  int machines;
};

class NoHugeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(NoHugeSweep, ValidAndWithinThreeHalves) {
  const auto& p = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance =
        no_huge_instance(p.family, p.jobs, p.machines, seed * 131);
    const AlgoResult result = no_huge(instance);
    ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                      result.lower_bound, 3, 2))
        << family_name(p.family) << " n=" << p.jobs << " m=" << p.machines
        << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, NoHugeSweep,
    ::testing::Values(SweepParam{Family::kUniform, 40, 4},
                      SweepParam{Family::kUniform, 150, 10},
                      SweepParam{Family::kBimodal, 60, 6},
                      SweepParam{Family::kManySmallClasses, 80, 6},
                      SweepParam{Family::kFewFatClasses, 60, 6},
                      SweepParam{Family::kSatellite, 90, 8},
                      SweepParam{Family::kPhotolith, 90, 8},
                      SweepParam{Family::kUnit, 100, 9}),
    [](const auto& sweep) {
      return std::string(family_name(sweep.param.family)) + "_n" +
             std::to_string(sweep.param.jobs) + "_m" +
             std::to_string(sweep.param.machines);
    });

TEST(NoHuge, StressManySeeds) {
  // Wider randomized stress at a fixed shape; every schedule must validate.
  for (std::uint64_t seed = 100; seed < 200; ++seed) {
    const Instance instance =
        no_huge_instance(Family::kUniform, 35, 5, seed);
    const AlgoResult result = no_huge(instance);
    ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                      result.lower_bound, 3, 2))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace msrs
