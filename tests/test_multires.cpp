// Tests for the multi-resource variant, the SAT substrate, and the
// Theorem-23 reduction (Lemma 24: OPT = 4 iff satisfiable, else 5).
#include <gtest/gtest.h>

#include "multires/mexact.hpp"
#include "multires/mgreedy.hpp"
#include "multires/minstance.hpp"
#include "multires/mschedule.hpp"
#include "multires/reduction.hpp"
#include "multires/sat.hpp"

namespace msrs {
namespace {

// ---------------- model & validator ----------------

TEST(MultiInstance, BasicAccounting) {
  MultiInstance instance;
  instance.set_machines(2);
  const int r0 = instance.add_resource();
  const int r1 = instance.add_resource();
  instance.add_job(3, {r0});
  instance.add_job(2, {r0, r1});
  EXPECT_EQ(instance.num_jobs(), 2);
  EXPECT_EQ(instance.total_load(), 5);
  EXPECT_EQ(instance.max_resources_per_job(), 2);
  EXPECT_TRUE(instance.check().empty());
}

TEST(MultiValidate, CatchesResourceConflicts) {
  MultiInstance instance;
  instance.set_machines(2);
  const int r = instance.add_resource();
  instance.add_job(2, {r});
  instance.add_job(2, {r});
  MSchedule schedule(2);
  schedule.machine = {0, 1};
  schedule.start = {0, 1};  // overlap on the shared resource
  EXPECT_FALSE(validate_multi(instance, schedule).ok());
  schedule.start = {0, 2};
  EXPECT_TRUE(validate_multi(instance, schedule).ok());
}

TEST(MultiGreedy, ProducesValidSchedules) {
  MultiInstance instance;
  instance.set_machines(3);
  const int r0 = instance.add_resource();
  const int r1 = instance.add_resource();
  const int r2 = instance.add_resource();
  for (int i = 0; i < 9; ++i)
    instance.add_job(1 + i % 4, {i % 2 ? r0 : r1, r2});
  const MSchedule schedule = mgreedy(instance);
  EXPECT_TRUE(validate_multi(instance, schedule).ok());
}

TEST(MExact, SimpleOptima) {
  // Two jobs sharing one resource: must serialize.
  MultiInstance instance;
  instance.set_machines(2);
  const int r = instance.add_resource();
  instance.add_job(2, {r});
  instance.add_job(2, {r});
  EXPECT_EQ(mexact_makespan(instance).value(), 4);

  // Independent jobs parallelize.
  MultiInstance free_instance;
  free_instance.set_machines(2);
  const int a = free_instance.add_resource();
  const int b = free_instance.add_resource();
  free_instance.add_job(2, {a});
  free_instance.add_job(2, {b});
  EXPECT_EQ(mexact_makespan(free_instance).value(), 2);
}

// ---------------- SAT ----------------

TEST(Dpll, SolvesTinyFormulas) {
  Cnf sat;
  sat.num_vars = 2;
  sat.clauses = {{1, 2}, {-1, 2}};
  const auto model = dpll(sat);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(sat.satisfied_by(*model));

  Cnf unsat;
  unsat.num_vars = 1;
  unsat.clauses = {{1}, {-1}};
  EXPECT_FALSE(dpll(unsat).has_value());
}

TEST(Dpll, HandlesForcedChains) {
  Cnf formula;
  formula.num_vars = 4;
  formula.clauses = {{1}, {-1, 2}, {-2, 3}, {-3, 4}};
  const auto model = dpll(formula);
  ASSERT_TRUE(model.has_value());
  for (int v = 1; v <= 4; ++v)
    EXPECT_TRUE((*model)[static_cast<std::size_t>(v)]);
}

TEST(Monotone22, GeneratorSatisfiesRestrictions) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Cnf formula = generate_monotone22(6, seed);
    EXPECT_TRUE(check_monotone22(formula).empty())
        << check_monotone22(formula);
    EXPECT_EQ(formula.clauses.size(), 8u);  // 4*6/3
  }
}

TEST(Monotone22, CheckerCatchesViolations) {
  Cnf formula;
  formula.num_vars = 3;
  formula.clauses = {{1, 2, 3}, {1, -2, 3}};
  EXPECT_FALSE(check_monotone22(formula).empty());
}

// ---------------- reduction ----------------

TEST(Reduction, GadgetShape) {
  const Cnf formula = generate_monotone22(3, 7);
  const Reduction red = build_reduction(formula);
  const int C = red.num_clauses();
  const int X = red.num_vars();
  EXPECT_EQ(C, 4);
  EXPECT_EQ(X, 3);
  EXPECT_EQ(red.instance.machines(), 2 * C + 2 * X);
  // job sizes only 1, 2, 3 and at most 3 resources per job (Theorem 23)
  for (JobId j = 0; j < red.instance.num_jobs(); ++j) {
    EXPECT_GE(red.instance.size(j), 1);
    EXPECT_LE(red.instance.size(j), 3);
  }
  EXPECT_LE(red.instance.max_resources_per_job(), 3);
  // perfect packing at makespan 4: total load equals 4 * machines
  EXPECT_EQ(red.instance.total_load(), 4 * red.instance.machines());
}

TEST(Reduction, ForwardDirectionYieldsMakespan4) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Cnf formula = generate_monotone22(6, seed);
    const auto model = dpll(formula);
    if (!model.has_value()) continue;  // need satisfiable samples
    const Reduction red = build_reduction(formula);
    const MSchedule schedule = schedule_from_assignment(red, *model);
    const auto report = validate_multi(red.instance, schedule, 4);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.first_problem;
    EXPECT_EQ(schedule.makespan(red.instance), 4);
  }
}

TEST(Reduction, TrivialScheduleAlwaysMakespan5) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Cnf formula = generate_monotone22(6, seed);
    const Reduction red = build_reduction(formula);
    const MSchedule schedule = trivial_schedule(red);
    const auto report = validate_multi(red.instance, schedule, 5);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.first_problem;
    EXPECT_EQ(schedule.makespan(red.instance), 5);
  }
}

TEST(Reduction, DecodeRecoversAssignment) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Cnf formula = generate_monotone22(6, seed);
    const auto model = dpll(formula);
    if (!model.has_value()) continue;
    const Reduction red = build_reduction(formula);
    const MSchedule schedule = schedule_from_assignment(red, *model);
    const auto decoded = assignment_from_schedule(red, schedule);
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    EXPECT_TRUE(formula.satisfied_by(*decoded));
  }
}

TEST(Reduction, DecodeHandlesFlippedSchedules) {
  const Cnf formula = generate_monotone22(3, 11);
  const auto model = dpll(formula);
  if (!model.has_value()) GTEST_SKIP() << "sample happened to be UNSAT";
  const Reduction red = build_reduction(formula);
  MSchedule schedule = schedule_from_assignment(red, *model);
  // Flip the whole schedule in time: still valid, still decodable.
  for (JobId j = 0; j < red.instance.num_jobs(); ++j)
    schedule.start[static_cast<std::size_t>(j)] =
        4 - schedule.start[static_cast<std::size_t>(j)] -
        red.instance.size(j);
  ASSERT_TRUE(validate_multi(red.instance, schedule, 4).ok());
  const auto decoded = assignment_from_schedule(red, schedule);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(formula.satisfied_by(*decoded));
}

TEST(Reduction, Lemma24IffOverCanonicalSpace) {
  // Lemma 24 shows every makespan-4 schedule is the canonical layout (up to
  // the time flip) for *some* assignment. Sweeping all 2^X assignments
  // through schedule_from_assignment therefore decides OPT = 4 exactly, and
  // must agree with DPLL.
  // Note: random Monotone-(2,2) instances are almost always satisfiable
  // (degree-2 3-uniform hypergraphs are 2-colorable by Seymour's theorem
  // when the positive and negative halves coincide; unsatisfiable instances
  // of this restriction are hand-crafted in [9]). The iff is therefore
  // verified as: canonical(assignment) is a valid makespan-4 schedule
  // exactly when the assignment satisfies the formula — over the whole
  // assignment space.
  int sat_seen = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Cnf formula = generate_monotone22(6, seed);
    const Reduction red = build_reduction(formula);
    bool makespan4_exists = false;
    for (std::uint32_t bits = 0; bits < (1u << 6); ++bits) {
      std::vector<bool> assignment(7, false);
      for (int v = 1; v <= 6; ++v)
        assignment[static_cast<std::size_t>(v)] = (bits >> (v - 1)) & 1u;
      const MSchedule schedule = schedule_from_assignment(red, assignment);
      const bool valid4 = validate_multi(red.instance, schedule, 4).ok();
      EXPECT_EQ(valid4, formula.satisfied_by(assignment))
          << "seed " << seed << " bits " << bits;
      if (valid4) {
        makespan4_exists = true;
        const auto decoded = assignment_from_schedule(red, schedule);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_TRUE(formula.satisfied_by(*decoded));
      }
    }
    EXPECT_EQ(makespan4_exists, dpll(formula).has_value()) << "seed " << seed;
    if (makespan4_exists) ++sat_seen;
  }
  EXPECT_GT(sat_seen, 0);
}

TEST(Reduction, ExactSolverConfirmsGapOnSubgadget) {
  // mexact on a clause gadget in isolation: the four clause jobs plus their
  // anchor dummies. Small enough for full search and exhibits the forced
  // positions of Lemma 24.
  MultiInstance instance;
  instance.set_machines(2);
  const int rA = instance.add_resource();
  const int rC = instance.add_resource();
  const JobId jA = instance.add_job(3, {rA});
  const JobId jd = instance.add_job(1, {rA, rC});
  instance.add_job(1, {rC});
  instance.add_job(1, {rC});
  instance.add_job(1, {rC});
  (void)jA;
  (void)jd;
  // load 7 on 2 machines; the C-resource serializes 4 unit jobs around jA.
  const auto optimum = mexact_makespan(instance);
  ASSERT_TRUE(optimum.has_value());
  EXPECT_EQ(*optimum, 4);
}

}  // namespace
}  // namespace msrs
