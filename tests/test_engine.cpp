// Tests for the engine layer: registry dispatch, portfolio racing and
// validation, batch sharding determinism, and the canonical-form cache.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algo/exact.hpp"
#include "algo/t_bound.hpp"
#include "core/validate.hpp"
#include "engine/engine.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"

namespace msrs::engine {
namespace {

Instance tiny_instance() {
  return test::make_instance(3, {{4, 2}, {3, 3}, {5}});
}

::testing::AssertionResult same_schedule(const Schedule& a, const Schedule& b) {
  if (a.scale() != b.scale())
    return ::testing::AssertionFailure()
           << "scale " << a.scale() << " vs " << b.scale();
  if (a.num_jobs() != b.num_jobs())
    return ::testing::AssertionFailure() << "job count differs";
  for (JobId j = 0; j < a.num_jobs(); ++j) {
    if (a.machine(j) != b.machine(j) || a.start(j) != b.start(j))
      return ::testing::AssertionFailure()
             << "job " << j << ": (" << a.machine(j) << "," << a.start(j)
             << ") vs (" << b.machine(j) << "," << b.start(j) << ")";
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult same_results(
    const std::vector<PortfolioResult>& a,
    const std::vector<PortfolioResult>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "result count differs";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].solver != b[i].solver)
      return ::testing::AssertionFailure()
             << "result " << i << ": solver " << a[i].solver << " vs "
             << b[i].solver;
    if (a[i].t_bound != b[i].t_bound || a[i].valid != b[i].valid)
      return ::testing::AssertionFailure() << "result " << i << " differs";
    auto schedules = same_schedule(a[i].schedule, b[i].schedule);
    if (!schedules)
      return ::testing::AssertionFailure()
             << "result " << i << ": " << schedules.message();
  }
  return ::testing::AssertionSuccess();
}

// --- registry ----------------------------------------------------------------

TEST(Registry, DefaultContainsTheLadder) {
  const SolverRegistry& registry = SolverRegistry::default_registry();
  for (const char* name :
       {"one_per_class", "exact", "three_halves", "no_huge", "five_thirds",
        "eptas", "list_lpt", "merge_lpt", "hebrard"})
    EXPECT_NE(registry.find(name), nullptr) << name;
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_EQ(registry.names().front(), "one_per_class");
}

class DummySolver final : public Solver {
 public:
  explicit DummySolver(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  SolverResult solve(const Instance&) const override { return {}; }

 private:
  std::string name_;
};

TEST(Registry, RejectsDuplicateNames) {
  SolverRegistry registry = SolverRegistry::make_default();
  EXPECT_THROW(registry.add(std::make_unique<DummySolver>("exact")),
               std::invalid_argument);
  registry.add(std::make_unique<DummySolver>("dummy"));
  EXPECT_NE(registry.find("dummy"), nullptr);
}

TEST(Registry, ApplicabilityPredicates) {
  const SolverRegistry& registry = SolverRegistry::default_registry();
  const Instance small = tiny_instance();  // n=5, m=3, |C|=3
  EXPECT_TRUE(registry.find("exact")->applicable(small));
  EXPECT_TRUE(registry.find("one_per_class")->applicable(small));

  const Instance big = generate(Family::kUniform, 200, 8, 1);
  EXPECT_FALSE(registry.find("exact")->applicable(big));
  EXPECT_FALSE(registry.find("one_per_class")->applicable(big))
      << "uniform(200,8) should have more classes than machines";
  EXPECT_TRUE(registry.find("five_thirds")->applicable(big));
  EXPECT_TRUE(registry.find("three_halves")->applicable(big));
}

TEST(Registry, SolverResultsCarryProvenance) {
  const SolverRegistry& registry = SolverRegistry::default_registry();
  const Instance instance = generate(Family::kBimodal, 40, 4, 3);
  for (const auto& solver : registry.solvers()) {
    if (!solver->applicable(instance)) continue;
    const SolverResult result = solver->solve(instance);
    EXPECT_EQ(result.solver, solver->name());
    if (result.ok) {
      EXPECT_TRUE(is_valid(instance, result.schedule)) << result.solver;
    }
  }
}

// --- portfolio ---------------------------------------------------------------

TEST(Portfolio, ValidWithinFiveThirdsOfBoundOnAllFamilies) {
  PortfolioSolver portfolio;
  for (const Family family : kAllFamilies) {
    for (const int machines : {4, 8}) {
      for (const std::uint64_t seed : {1u, 2u}) {
        const Instance instance = generate(family, 48, machines, seed);
        const PortfolioResult result = portfolio.solve(instance);
        ASSERT_TRUE(result.valid) << family_name(family) << " seed " << seed;
        EXPECT_FALSE(result.solver.empty());
        EXPECT_TRUE(is_valid(instance, result.schedule));
        EXPECT_TRUE(result.schedule.complete());
        EXPECT_EQ(result.t_bound, three_halves_bound(instance));
        // Winner is at least as good as five_thirds, so exactly within
        // (5/3)T of the Lemma-9 bound.
        EXPECT_TRUE(test::schedule_within(instance, result.schedule,
                                          result.t_bound, 5, 3))
            << family_name(family) << " m=" << machines << " seed " << seed
            << " via " << result.solver;
        EXPECT_DOUBLE_EQ(
            result.ratio_vs_bound,
            result.makespan / static_cast<double>(result.t_bound));
      }
    }
  }
}

TEST(Portfolio, AttemptsRecordTheRaceAndWinnerIsBest) {
  PortfolioSolver portfolio;
  const Instance instance = generate(Family::kUniform, 60, 6, 7);
  const PortfolioResult result = portfolio.solve(instance);
  ASSERT_TRUE(result.valid);
  ASSERT_GE(result.attempts.size(), 3u);
  bool winner_seen = false;
  for (const Attempt& attempt : result.attempts) {
    EXPECT_FALSE(attempt.solver.empty());
    if (attempt.valid) {
      EXPECT_GE(attempt.makespan, result.makespan - 1e-9) << attempt.solver;
    }
    if (attempt.solver == result.solver) winner_seen = true;
  }
  EXPECT_TRUE(winner_seen);
}

TEST(Portfolio, RegimeShortcutsToOnePerClassWhenMachinesCoverClasses) {
  PortfolioSolver portfolio;
  const Instance instance = test::make_instance(4, {{9, 1}, {5, 5}, {7}});
  const PortfolioResult result = portfolio.solve(instance);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.solver, "one_per_class");
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);  // max class load
}

TEST(Portfolio, ExactWinsOnTinyInstances) {
  PortfolioSolver portfolio;
  const Instance instance = tiny_instance();
  const PortfolioResult result = portfolio.solve(instance);
  ASSERT_TRUE(result.valid);
  const ExactResult exact = exact_makespan(instance);
  ASSERT_TRUE(exact.optimal);
  EXPECT_DOUBLE_EQ(result.makespan, static_cast<double>(exact.makespan));
}

TEST(Portfolio, RespectsOnlyFilter) {
  PortfolioOptions options;
  options.only = {"five_thirds"};
  PortfolioSolver portfolio(SolverRegistry::default_registry(), options);
  const Instance instance = generate(Family::kBimodal, 50, 5, 4);
  const PortfolioResult result = portfolio.solve(instance);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.solver, "five_thirds");
  ASSERT_EQ(result.attempts.size(), 1u);
}

TEST(Portfolio, BudgetGatesSearchSolvers) {
  // m < |C| so the one_per_class regime shortcut does not trigger.
  const Instance instance = test::make_instance(2, {{4, 2}, {3, 3}, {5}});
  PortfolioOptions cheap;
  cheap.budget_ms = 0;
  PortfolioSolver gated(SolverRegistry::default_registry(), cheap);
  for (const Solver* solver : gated.candidates(instance))
    EXPECT_NE(solver->name(), "exact");

  PortfolioSolver rich;  // default budget admits exact on tiny n
  bool exact_raced = false;
  for (const Solver* solver : rich.candidates(instance))
    if (solver->name() == "exact") exact_raced = true;
  EXPECT_TRUE(exact_raced);
}

TEST(Portfolio, RacingThreadsDoNotChangeTheResult) {
  const Instance instance = generate(Family::kHugeHeavy, 40, 6, 9);
  PortfolioOptions sequential;
  sequential.threads = 1;
  PortfolioOptions raced;
  raced.threads = 4;
  const PortfolioResult a =
      PortfolioSolver(SolverRegistry::default_registry(), sequential)
          .solve(instance);
  const PortfolioResult b =
      PortfolioSolver(SolverRegistry::default_registry(), raced)
          .solve(instance);
  ASSERT_TRUE(a.valid);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_TRUE(same_schedule(a.schedule, b.schedule));
}

TEST(Portfolio, EmptyInstanceIsTriviallyValid) {
  PortfolioSolver portfolio;
  Instance instance;
  instance.set_machines(2);
  const PortfolioResult result = portfolio.solve(instance);
  EXPECT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

// --- canonical form ----------------------------------------------------------

TEST(CanonicalForm, InvariantUnderClassAndJobPermutation) {
  const Instance a = test::make_instance(2, {{5, 3}, {7}, {2, 2, 4}});
  const Instance b = test::make_instance(2, {{4, 2, 2}, {3, 5}, {7}});
  const CanonicalForm fa = canonical_form(a);
  const CanonicalForm fb = canonical_form(b);
  EXPECT_EQ(fa.key, fb.key);
  EXPECT_TRUE(fa.same_shape(fb));
}

TEST(CanonicalForm, DistinguishesMachinesAndSizes) {
  const Instance a = test::make_instance(2, {{5, 3}, {7}});
  const Instance b = test::make_instance(3, {{5, 3}, {7}});
  const Instance c = test::make_instance(2, {{5, 4}, {7}});
  EXPECT_FALSE(canonical_form(a).same_shape(canonical_form(b)));
  EXPECT_FALSE(canonical_form(a).same_shape(canonical_form(c)));
}

// --- batch engine ------------------------------------------------------------

std::vector<Instance> mixed_batch(int repeats, int seeds) {
  std::vector<Instance> batch;
  for (int r = 0; r < repeats; ++r)
    for (int s = 1; s <= seeds; ++s)
      for (const Family family :
           {Family::kUniform, Family::kBimodal, Family::kManySmallClasses,
            Family::kSatellite, Family::kPhotolith})
        batch.push_back(generate(family, 18, 3 + (s % 3) * 2,
                                 static_cast<std::uint64_t>(s)));
  return batch;
}

TEST(BatchEngine, OutputIndependentOfThreadCount) {
  const std::vector<Instance> batch = mixed_batch(1, 12);
  BatchOptions one;
  one.threads = 1;
  BatchOptions many;
  many.threads = 8;
  BatchEngine engine_one(SolverRegistry::default_registry(), one);
  BatchEngine engine_many(SolverRegistry::default_registry(), many);
  const auto a = engine_one.solve(batch);
  const auto b = engine_many.solve(batch);
  EXPECT_TRUE(same_results(a, b));
  EXPECT_EQ(engine_one.stats().cache_hits, engine_many.stats().cache_hits);
  EXPECT_EQ(engine_one.stats().solved, engine_many.stats().solved);
}

TEST(BatchEngine, ServesRepeatedInstancesFromCache) {
  std::vector<Instance> batch;
  for (int copy = 0; copy < 3; ++copy)
    for (int s = 1; s <= 4; ++s)
      batch.push_back(generate(Family::kUniform, 20, 4,
                               static_cast<std::uint64_t>(s)));
  BatchEngine engine;
  const auto results = engine.solve(batch);
  EXPECT_EQ(engine.stats().solved, 4u);
  EXPECT_EQ(engine.stats().cache_hits, 8u);
  EXPECT_EQ(engine.stats().entries, 4u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_TRUE(results[i].valid);
    EXPECT_TRUE(is_valid(batch[i], results[i].schedule)) << i;
  }

  // A second identical batch is served entirely from the resident cache.
  const auto again = engine.solve(batch);
  EXPECT_EQ(engine.stats().solved, 4u);
  EXPECT_EQ(engine.stats().cache_hits, 20u);
  EXPECT_TRUE(same_results(results, again));
}

TEST(BatchEngine, CacheRemapsPermutedTwins) {
  // Same canonical shape, different class/job order: the cached schedule
  // must transfer through the canonical bijection and stay valid.
  const Instance a = test::make_instance(2, {{6, 2}, {5, 5}, {9}});
  const Instance b = test::make_instance(2, {{9}, {2, 6}, {5, 5}});
  BatchEngine engine;
  const auto results = engine.solve({a, b});
  EXPECT_EQ(engine.stats().solved, 1u);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  ASSERT_TRUE(results[0].valid);
  ASSERT_TRUE(results[1].valid);
  EXPECT_TRUE(is_valid(b, results[1].schedule));
  EXPECT_DOUBLE_EQ(results[0].makespan, results[1].makespan);
  EXPECT_EQ(results[0].solver, results[1].solver);
}

TEST(BatchEngine, BoundedCacheEvictsButStaysCorrect) {
  BatchOptions options;
  options.cache_capacity = 2;  // room for two shapes
  BatchEngine engine(SolverRegistry::default_registry(), options);
  // Four distinct shapes, then a repeat of the first: with capacity 2 the
  // first shape has been evicted, so it is re-solved — correctly.
  std::vector<Instance> batch;
  for (int s = 1; s <= 4; ++s)
    batch.push_back(generate(Family::kUniform, 18 + 2 * s, 4,
                             static_cast<std::uint64_t>(s)));
  const auto first = engine.solve(batch);
  EXPECT_EQ(engine.stats().entries, 2u);
  EXPECT_GE(engine.cache_stats().evictions, 2u);
  EXPECT_EQ(engine.cache_stats().capacity, 2u);

  const auto again = engine.solve({batch[0]});
  EXPECT_EQ(engine.stats().solved, 5u);  // evicted shape solved again
  ASSERT_TRUE(again[0].valid);
  EXPECT_DOUBLE_EQ(again[0].makespan, first[0].makespan);
  EXPECT_TRUE(is_valid(batch[0], again[0].schedule));

  // The repeat of a *resident* shape is still a hit.
  const auto resident = engine.solve({batch[3]});
  EXPECT_EQ(engine.stats().solved, 5u);
  EXPECT_TRUE(resident[0].from_cache);
}

TEST(BatchEngine, CacheDisabledSolvesEverything) {
  const std::vector<Instance> batch = {
      generate(Family::kUniform, 16, 4, 1),
      generate(Family::kUniform, 16, 4, 1),
  };
  BatchOptions options;
  options.cache = false;
  BatchEngine engine(SolverRegistry::default_registry(), options);
  const auto results = engine.solve(batch);
  EXPECT_EQ(engine.stats().solved, 2u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_TRUE(same_results({results[0]}, {results[1]}));
}

// Acceptance: a 1000-instance mixed batch, solved deterministically with
// measurable cache hits, every result validated.
TEST(BatchEngine, ThousandInstanceMixedBatch) {
  const std::vector<Instance> batch = mixed_batch(/*repeats=*/5, /*seeds=*/40);
  ASSERT_EQ(batch.size(), 1000u);
  BatchOptions options;
  options.threads = 4;
  BatchEngine engine(SolverRegistry::default_registry(), options);
  const auto results = engine.solve(batch);

  EXPECT_EQ(engine.stats().instances, 1000u);
  EXPECT_EQ(engine.stats().solved, 200u);      // 5 families x 40 seeds, once each
  EXPECT_EQ(engine.stats().cache_hits, 800u);  // the other 4 repeats
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(results[i].valid) << i;
    EXPECT_TRUE(test::schedule_within(batch[i], results[i].schedule,
                                      results[i].t_bound, 5, 3))
        << i << " via " << results[i].solver;
  }

  BatchOptions sequential;
  sequential.threads = 1;
  BatchEngine engine_seq(SolverRegistry::default_registry(), sequential);
  EXPECT_TRUE(same_results(results, engine_seq.solve(batch)));
}

}  // namespace
}  // namespace msrs::engine
