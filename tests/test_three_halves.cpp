// Tests for Algorithm_3/2 (Theorem 7): feasibility and the 3/2 guarantee.
#include <gtest/gtest.h>

#include "algo/exact.hpp"
#include "algo/three_halves.hpp"
#include "algo/t_bound.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"

namespace msrs {
namespace {

TEST(ThreeHalves, EmptyAndTrivial) {
  Instance empty;
  empty.set_machines(2);
  EXPECT_TRUE(three_halves(empty).schedule.complete());

  Instance trivial = test::make_instance(4, {{3, 2}, {4}});
  const AlgoResult result = three_halves(trivial);
  EXPECT_TRUE(is_valid(trivial, result.schedule));
  EXPECT_DOUBLE_EQ(result.schedule.makespan(trivial), 5.0);
}

TEST(ThreeHalves, HugeClassesGetOwnMachines) {
  // Classes with a huge job each + small filler.
  Instance instance = test::make_instance(
      3, {{95}, {90, 8}, {20, 15}, {10, 10}, {9, 8, 7}});
  const AlgoResult result = three_halves(instance);
  ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                    result.lower_bound, 3, 2));
}

TEST(ThreeHalves, Step4PairingShape) {
  // Two open huge machines + mid classes not in C_B.
  Instance instance = test::make_instance(
      4, {{80}, {82}, {30, 30}, {28, 28}, {20, 20, 15}, {18, 17, 12}});
  const AlgoResult result = three_halves(instance);
  ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                    result.lower_bound, 3, 2));
}

struct SweepParam {
  Family family;
  int jobs;
  int machines;
};

class ThreeHalvesSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ThreeHalvesSweep, ValidAndWithinThreeHalves) {
  const auto& p = GetParam();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(p.family, p.jobs, p.machines, seed);
    const AlgoResult result = three_halves(instance);
    ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                      result.lower_bound, 3, 2))
        << family_name(p.family) << " n=" << p.jobs << " m=" << p.machines
        << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ThreeHalvesSweep,
    ::testing::Values(
        SweepParam{Family::kUniform, 30, 3}, SweepParam{Family::kUniform, 150, 12},
        SweepParam{Family::kBimodal, 50, 5}, SweepParam{Family::kBimodal, 200, 16},
        SweepParam{Family::kHugeHeavy, 20, 3}, SweepParam{Family::kHugeHeavy, 60, 8},
        SweepParam{Family::kHugeHeavy, 120, 16},
        SweepParam{Family::kManySmallClasses, 70, 6},
        SweepParam{Family::kFewFatClasses, 60, 6},
        SweepParam{Family::kSatellite, 90, 7},
        SweepParam{Family::kPhotolith, 110, 9},
        SweepParam{Family::kAdversarialLpt, 24, 4},
        SweepParam{Family::kUnit, 80, 8}),
    [](const auto& sweep) {
      return std::string(family_name(sweep.param.family)) + "_n" +
             std::to_string(sweep.param.jobs) + "_m" +
             std::to_string(sweep.param.machines);
    });

TEST(ThreeHalves, StressHugeHeavyManySeeds) {
  // The huge-machine steps (4/5/8/9/10) are the delicate ones; hammer them.
  for (std::uint64_t seed = 500; seed < 650; ++seed) {
    const Instance instance = generate(Family::kHugeHeavy, 40, 6, seed);
    const AlgoResult result = three_halves(instance);
    ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                      result.lower_bound, 3, 2))
        << "seed " << seed;
  }
}

TEST(ThreeHalves, RatioVsExactOnSmallInstances) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Instance instance = generate(Family::kBimodal, 8, 3, seed);
    const AlgoResult approx = three_halves(instance);
    const ExactResult exact = exact_makespan(instance);
    ASSERT_TRUE(exact.optimal);
    const double ratio = approx.schedule.makespan(instance) /
                         static_cast<double>(exact.makespan);
    EXPECT_LE(ratio, 1.5 + 1e-9) << "seed " << seed;
    EXPECT_GE(ratio, 1.0 - 1e-9);
  }
}

TEST(ThreeHalves, UsesLemma9Bound) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = generate(Family::kHugeHeavy, 30, 4, seed);
    if (instance.machines() >= instance.num_classes()) continue;
    const AlgoResult result = three_halves(instance);
    EXPECT_EQ(result.lower_bound, three_halves_bound(instance));
  }
}

TEST(ThreeHalves, AlwaysAtLeastAsGoodAsTheGuarantee) {
  // makespan/T <= 1.5 strictly enforced over a broad mixed sweep.
  for (Family family : kAllFamilies) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance instance = generate(family, 64, 6, seed * 7919);
      const AlgoResult result = three_halves(instance);
      ASSERT_TRUE(test::schedule_within(instance, result.schedule,
                                        result.lower_bound, 3, 2))
          << family_name(family) << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace msrs
