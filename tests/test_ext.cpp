// Tests for the total-completion-time extension.
#include <gtest/gtest.h>

#include "algo/greedy.hpp"
#include "core/validate.hpp"
#include "ext/completion_time.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"

namespace msrs {
namespace {

TEST(CompletionTime, ObjectiveComputation) {
  Instance instance = test::make_instance(2, {{2}, {3}});
  Schedule schedule(2, 1);
  schedule.assign(0, 0, 0);  // finishes 2
  schedule.assign(1, 1, 1);  // finishes 4
  EXPECT_EQ(total_completion_time_scaled(instance, schedule), 6);
  EXPECT_DOUBLE_EQ(total_completion_time(instance, schedule), 6.0);
}

TEST(CompletionTime, SptValidAndBounded) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kPhotolith, 60, 4, seed);
    const AlgoResult result = spt_completion(instance);
    ASSERT_TRUE(is_valid(instance, result.schedule));
    const double objective = total_completion_time(instance, result.schedule);
    const double bound = static_cast<double>(result.lower_bound);
    ASSERT_GT(bound, 0.0);
    // The (2 - 1/m) guarantee of Janssen et al. is relative to OPT; our
    // relaxation bound can sit below OPT, so the testable corridor is wider
    // (bench E8 reports the measured ratios per family).
    EXPECT_LE(objective, 3.0 * bound) << "seed " << seed;
    EXPECT_GE(objective, bound * (1.0 - 1e-12));
  }
}

TEST(CompletionTime, LowerBoundIsTightWithoutConflicts) {
  // Singleton classes: SPT is optimal and matches the relaxation exactly.
  Instance instance = test::make_instance(2, {{1}, {2}, {3}, {4}});
  const AlgoResult result = spt_completion(instance);
  EXPECT_DOUBLE_EQ(total_completion_time(instance, result.schedule),
                   static_cast<double>(completion_time_lower_bound(instance)));
}

TEST(CompletionTime, SerializationBoundBitesForSingleClass) {
  // One class of k unit jobs: completion times 1+2+...+k regardless of m.
  Instance instance = test::make_instance(4, {{1, 1, 1, 1, 1}});
  EXPECT_EQ(completion_time_lower_bound(instance), 15);
  const AlgoResult result = spt_completion(instance);
  EXPECT_DOUBLE_EQ(total_completion_time(instance, result.schedule), 15.0);
}

TEST(CompletionTime, MakespanScheduleUsuallyWorseOnSumObjective) {
  // Sanity: SPT should not lose to LPT-style ordering on the sum objective
  // (averaged over seeds).
  double spt_total = 0.0, lpt_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate(Family::kUniform, 50, 4, seed);
    spt_total += total_completion_time(instance,
                                       spt_completion(instance).schedule);
    lpt_total += total_completion_time(
        instance, list_schedule(instance, ListPriority::kLptJob).schedule);
  }
  EXPECT_LT(spt_total, lpt_total);
}

}  // namespace
}  // namespace msrs
