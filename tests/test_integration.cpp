// Integration tests: cross-module flows and the paper's structural facts.
#include <gtest/gtest.h>

#include "algo/exact.hpp"
#include "algo/five_thirds.hpp"
#include "algo/t_bound.hpp"
#include "algo/three_halves.hpp"
#include "core/instance_io.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "ptas/eptas.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"

namespace msrs {
namespace {

// Observation 3/4 (Section 2): relative to T = max(ceil(p(J)/m), max_c p(c),
// p_(m)+p_(m+1)), every class has at most one job > T/2, and at most m
// classes contain such a job.
TEST(PaperFacts, Observations3And4) {
  for (Family family : kAllFamilies) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Instance instance = generate(family, 80, 6, seed);
      const Time T = lower_bounds(instance).combined;
      int classes_with_big = 0;
      for (ClassId c = 0; c < instance.num_classes(); ++c) {
        int big_jobs = 0;
        for (JobId j : instance.class_jobs(c))
          if (2 * instance.size(j) > T) ++big_jobs;
        EXPECT_LE(big_jobs, 1) << family_name(family) << " class " << c;
        classes_with_big += big_jobs > 0 ? 1 : 0;
      }
      EXPECT_LE(classes_with_big, instance.machines()) << family_name(family);
    }
  }
}

// Lemma 8: the census holds at the true optimum (verified via the exact
// solver on small instances) — the foundation of the Lemma-9 bound search.
TEST(PaperFacts, Lemma8CensusHoldsAtOptimum) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Instance instance = generate(
        seed % 2 ? Family::kHugeHeavy : Family::kBimodal, 9, 3, seed);
    const ExactResult exact = exact_makespan(instance);
    ASSERT_TRUE(exact.optimal);
    EXPECT_TRUE(census_ok(instance, exact.makespan))
        << "seed " << seed << " OPT=" << exact.makespan;
  }
}

// Note 1: OPT >= every lower-bound component, with the exact solver as
// ground truth.
TEST(PaperFacts, Note1AtOptimum) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kSatellite, 9, 3, seed);
    const ExactResult exact = exact_makespan(instance);
    ASSERT_TRUE(exact.optimal);
    const LowerBounds bounds = lower_bounds(instance);
    EXPECT_GE(exact.makespan, bounds.area);
    EXPECT_GE(exact.makespan, bounds.class_bound);
    EXPECT_GE(exact.makespan, bounds.pair);
  }
}

// Serialize -> parse -> solve -> validate, end to end, for every algorithm.
TEST(Pipeline, RoundTripSolveValidate) {
  for (Family family : {Family::kUniform, Family::kPhotolith}) {
    const Instance original = generate(family, 60, 5, 11);
    const auto parsed = from_text(to_text(original));
    ASSERT_TRUE(parsed.has_value());

    for (const auto& result : {five_thirds(*parsed), three_halves(*parsed)}) {
      EXPECT_TRUE(is_valid(*parsed, result.schedule)) << result.name;
      // The parsed instance is structurally identical, so schedules are
      // interchangeable between the two instance objects.
      EXPECT_TRUE(is_valid(original, result.schedule)) << result.name;
    }
  }
}

// The algorithms' outputs relate as theory says on one shared instance:
// T <= OPT <= EPTAS/3-2/5-3 makespans <= their factors times T.
TEST(Pipeline, AllSolversCoherentOnOneInstance) {
  const Instance instance = generate(Family::kBimodal, 10, 3, 17);
  const Time T32 = three_halves_bound(instance);
  const ExactResult exact = exact_makespan(instance);
  ASSERT_TRUE(exact.optimal);
  const AlgoResult a53 = five_thirds(instance);
  const AlgoResult a32 = three_halves(instance);
  const EptasResult scheme = eptas(instance, {.e = 2, .m_constant = true});

  EXPECT_LE(T32, exact.makespan);
  const double opt = static_cast<double>(exact.makespan);
  EXPECT_LE(opt, a53.schedule.makespan(instance) + 1e-9);
  EXPECT_LE(opt, a32.schedule.makespan(instance) + 1e-9);
  EXPECT_LE(opt, scheme.schedule.makespan(instance) + 1e-9);
  EXPECT_LE(a53.schedule.makespan(instance), 5.0 / 3.0 * opt + 1e-9);
  EXPECT_LE(a32.schedule.makespan(instance), 1.5 * opt + 1e-9);
}

// Gantt rendering of real schedules never drops jobs (every job id appears
// in some row when labelled).
TEST(Pipeline, GanttContainsAllMachines) {
  const Instance instance = generate(Family::kFewFatClasses, 30, 4, 5);
  const AlgoResult result = three_halves(instance);
  const std::string art = result.schedule.render(instance);
  for (int machine = 0; machine < instance.machines(); ++machine)
    EXPECT_NE(art.find("m" + std::to_string(machine)), std::string::npos);
}

// Determinism: the full pipeline produces byte-identical schedules across
// repeated runs (no hidden global state).
TEST(Pipeline, FullyDeterministic) {
  const Instance instance = generate(Family::kSatellite, 70, 6, 23);
  const AlgoResult first = three_halves(instance);
  const AlgoResult second = three_halves(instance);
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    EXPECT_EQ(first.schedule.machine(j), second.schedule.machine(j));
    EXPECT_EQ(first.schedule.start(j), second.schedule.start(j));
  }
}

}  // namespace
}  // namespace msrs
