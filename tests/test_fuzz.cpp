// Mutation and fuzz testing: the exact validator is the safety net of the
// whole repository (every algorithm's output funnels through it in tests),
// so here we verify the net itself: randomly corrupted valid schedules must
// be rejected, and all algorithms must remain coherent with each other and
// with the exact solver on randomized instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <set>
#include <thread>

#include "algo/baselines.hpp"
#include "algo/exact.hpp"
#include "algo/five_thirds.hpp"
#include "algo/greedy.hpp"
#include "algo/three_halves.hpp"
#include "core/instance_io.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "serve/event_loop.hpp"
#include "serve/service.hpp"
#include "serve/tcp.hpp"
#include "serve/transport.hpp"
#include "sim/workloads.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace msrs {
namespace {

// ---------------- validator mutation testing ----------------

// Mutations that must each break a *tight* valid schedule, or be detected
// as out-of-contract. We use list schedules (no idle gaps beyond resource
// waits) so most mutations genuinely collide.
enum class Mutation {
  kShiftEarlier,    // move one job earlier by 1..p (overlap or negative)
  kCloneOnto,       // move a job onto another machine at an occupied time
  kUnassign,        // drop an assignment
  kBadMachine,      // machine id out of range
  kClassCollision,  // align two same-class jobs in time
};

TEST(ValidatorFuzz, MutationsAreDetected) {
  Rng rng(20240610);
  int detected = 0, attempted = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const Instance instance = generate(Family::kUniform, 40, 4, seed);
    const AlgoResult base = list_schedule(instance, ListPriority::kLptJob);
    ASSERT_TRUE(is_valid(instance, base.schedule));

    for (const Mutation mutation :
         {Mutation::kShiftEarlier, Mutation::kCloneOnto, Mutation::kUnassign,
          Mutation::kBadMachine, Mutation::kClassCollision}) {
      Schedule mutant = base.schedule;
      const JobId j = static_cast<JobId>(
          rng.uniform(0, instance.num_jobs() - 1));
      bool expect_invalid = true;
      switch (mutation) {
        case Mutation::kShiftEarlier: {
          const Time start = mutant.start(j);
          if (start == 0) {
            expect_invalid = false;  // nothing to shift; skip
            break;
          }
          mutant.assign(j, mutant.machine(j),
                        std::max<Time>(-1, start - rng.uniform(1, start + 1)));
          // Shifting earlier can still be valid if the machine and the
          // class both happen to be idle there; we only count detections.
          expect_invalid = false;
          break;
        }
        case Mutation::kCloneOnto: {
          const JobId other = static_cast<JobId>(
              rng.uniform(0, instance.num_jobs() - 1));
          if (other == j) {
            expect_invalid = false;
            break;
          }
          // Put j exactly where `other` runs: guaranteed machine overlap.
          mutant.assign(j, mutant.machine(other), mutant.start(other));
          expect_invalid = true;
          break;
        }
        case Mutation::kUnassign:
          mutant.unassign(j);
          break;
        case Mutation::kBadMachine:
          mutant.assign(j, instance.machines() + 3, mutant.start(j));
          break;
        case Mutation::kClassCollision: {
          const auto& members =
              instance.class_jobs(instance.job_class(j));
          if (members.size() < 2) {
            expect_invalid = false;
            break;
          }
          const JobId sibling = members[0] == j ? members[1] : members[0];
          // Run j in parallel with its sibling on another machine.
          mutant.assign(j, (mutant.machine(sibling) + 1) % instance.machines(),
                        mutant.start(sibling));
          expect_invalid = true;
          break;
        }
      }
      ++attempted;
      const bool caught = !is_valid(instance, mutant);
      if (expect_invalid) {
        EXPECT_TRUE(caught) << "mutation " << static_cast<int>(mutation)
                            << " seed " << seed << " escaped the validator";
      }
      detected += caught ? 1 : 0;
    }
  }
  // The validator must catch the guaranteed-invalid mutations (asserted
  // above); across all mutations the detection rate should be high.
  EXPECT_GT(detected, attempted / 2);
}

TEST(ValidatorFuzz, CloneIsAlwaysMachineOverlap) {
  Rng rng(7);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = generate(Family::kManySmallClasses, 30, 3, seed);
    const AlgoResult base = list_schedule(instance, ListPriority::kInputOrder);
    Schedule mutant = base.schedule;
    const JobId a = 0;
    const JobId b = instance.num_jobs() > 1 ? 1 : 0;
    if (a == b) continue;
    mutant.assign(a, mutant.machine(b), mutant.start(b));
    const auto report = validate(instance, mutant);
    EXPECT_FALSE(report.ok());
    bool has_machine_overlap = false;
    for (const auto& violation : report.violations)
      if (violation.kind == Violation::Kind::kMachineOverlap)
        has_machine_overlap = true;
    EXPECT_TRUE(has_machine_overlap);
  }
}

// ---------------- instance-IO fuzz ----------------

TEST(IoFuzz, RandomTextNeverCrashes) {
  Rng rng(999);
  const char alphabet[] = "msr 1234567890\nclaches ";
  for (int round = 0; round < 200; ++round) {
    std::string text;
    const auto len = static_cast<std::size_t>(rng.uniform(0, 120));
    for (std::size_t i = 0; i < len; ++i)
      text.push_back(alphabet[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(sizeof alphabet) - 2))]);
    std::string error;
    const auto parsed = from_text(text, &error);
    if (parsed.has_value()) {
      EXPECT_TRUE(parsed->check().empty());
    }
  }
}

TEST(IoFuzz, TruncatedValidInstancesAreRejected) {
  const Instance instance = generate(Family::kUniform, 20, 3, 5);
  const std::string full = to_text(instance);
  for (std::size_t cut = 0; cut + 1 < full.size(); cut += 7) {
    const auto parsed = from_text(full.substr(0, cut));
    if (parsed.has_value()) {
      // A prefix can only parse if it happens to contain complete classes;
      // it must still be well-formed.
      EXPECT_TRUE(parsed->check().empty());
    }
  }
}

// ---------------- wire request-parser fuzz ----------------

TEST(WireFuzz, RandomRequestLinesNeverCrashAndAlwaysNameAnError) {
  // Random bytes over a JSON-flavored alphabet: the serving-layer request
  // parser must either produce a valid request or a named error — never
  // crash, never return an unnamed failure.
  Rng rng(20260729);
  const char alphabet[] = "{}[]\":,solvepingtau 0123456789.\\ne";
  for (int round = 0; round < 300; ++round) {
    std::string line;
    const auto len = static_cast<std::size_t>(rng.uniform(0, 100));
    for (std::size_t i = 0; i < len; ++i)
      line.push_back(alphabet[static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(sizeof alphabet) - 2))]);
    serve::WireError code = serve::WireError::kParseError;
    std::string detail;
    const auto request = serve::parse_request(line, &code, &detail);
    if (!request.has_value()) {
      EXPECT_FALSE(std::string(serve::wire_error_name(code)).empty());
      EXPECT_NE(serve::wire_error_name(code), "unknown_error") << line;
    }
  }
}

TEST(WireFuzz, MutatedValidRequestsAreHandledByName) {
  // Start from a valid solve request and corrupt one byte at every
  // position; each mutant must parse cleanly or fail with a named error,
  // and a live service must answer it without dying.
  const std::string valid =
      R"({"id":3,"op":"solve","spec":"uniform:n=8,m=2,seed=1","wire":1})";
  serve::ServiceOptions options;
  options.shards = 1;
  serve::Service service(options);
  Rng rng(77);
  for (std::size_t position = 0; position < valid.size(); position += 3) {
    std::string mutant = valid;
    mutant[position] = static_cast<char>(rng.uniform(32, 126));
    const std::string response = service.handle(mutant);
    EXPECT_NE(response.find("\"ok\":"), std::string::npos) << mutant;
  }
  // The service survived the whole mutation sweep.
  const std::string response = service.handle(valid);
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
}

// ---------------- byte-stream reassembly fuzz ----------------

// Reference framing: what any correct JSONL reassembler must produce for
// a byte stream, independent of packetization.
void reference_frames(const std::string& stream, std::vector<std::string>* lines,
                      std::string* remainder) {
  std::size_t begin = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stream[i] == '\n') {
      lines->push_back(stream.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  *remainder = stream.substr(begin);
}

TEST(FramerFuzz, RandomSplitPointsNeverChangeTheRecoveredLines) {
  // The transport cannot choose its packet boundaries; the reassembly
  // buffer must recover the identical line sequence for every chunking of
  // the same bytes — including splits through '\n' neighborhoods, empty
  // appends, and an unterminated tail.
  Rng rng(20260807);
  const char alphabet[] = "{}\":,solve ping\\n0123456789\r";
  for (int round = 0; round < 120; ++round) {
    std::string stream;
    const int pieces = static_cast<int>(rng.uniform(0, 12));
    for (int p = 0; p < pieces; ++p) {
      const auto len = static_cast<std::size_t>(rng.uniform(0, 40));
      for (std::size_t i = 0; i < len; ++i)
        stream.push_back(alphabet[static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(sizeof alphabet) - 2))]);
      if (rng.uniform(0, 3) != 0) stream.push_back('\n');
    }
    std::vector<std::string> expected_lines;
    std::string expected_remainder;
    reference_frames(stream, &expected_lines, &expected_remainder);

    serve::LineFramer framer(1 << 16);
    std::vector<std::string> lines;
    std::string line;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      if (rng.uniform(0, 7) == 0) framer.append(stream.data(), 0);  // no-op
      const auto chunk = static_cast<std::size_t>(rng.uniform(
          1, static_cast<std::int64_t>(stream.size() - offset)));
      framer.append(stream.data() + offset, chunk);
      offset += chunk;
      while (framer.next_line(&line)) lines.push_back(line);
    }
    ASSERT_EQ(lines, expected_lines) << "round " << round;
    EXPECT_FALSE(framer.overflowed()) << "round " << round;
    EXPECT_EQ(framer.take_remainder(), expected_remainder)
        << "round " << round;
    EXPECT_EQ(framer.buffered(), 0u) << "round " << round;
  }
}

TEST(FramerFuzz, OverflowLatchIsMonotoneUnderRandomChunking) {
  // Flood streams around the line bound: the framer must never crash, and
  // once the overflow latch trips it must never reset — the transport
  // relies on it to turn the connection into a drain-close exactly once.
  Rng rng(4242);
  for (int round = 0; round < 60; ++round) {
    serve::LineFramer framer(32);
    std::string stream;
    const auto len = static_cast<std::size_t>(rng.uniform(0, 200));
    for (std::size_t i = 0; i < len; ++i)
      stream.push_back(rng.uniform(0, 9) == 0 ? '\n' : 'x');
    bool seen_overflow = false;
    std::string line;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const auto chunk = static_cast<std::size_t>(
          rng.uniform(1, static_cast<std::int64_t>(stream.size() - offset)));
      framer.append(stream.data() + offset, chunk);
      offset += chunk;
      while (framer.next_line(&line)) {
      }
      if (seen_overflow) {
        EXPECT_TRUE(framer.overflowed()) << "latch reset, round " << round;
      }
      seen_overflow = framer.overflowed();
    }
  }
}

TEST(FramerFuzz, RandomlyChunkedTcpStreamAnswersEveryLineInOrder) {
  // End to end: a mixed valid/garbage request stream pushed through the
  // TCP transport in random-size segments must yield exactly one response
  // per non-empty line, with id-carrying responses in request order.
  if (!serve::tcp_transport_available())
    GTEST_SKIP() << "no TCP transport on this platform";
  serve::ServiceOptions service_options;
  service_options.shards = 2;
  service_options.budget_ms = 10;
  serve::Service service(service_options);
  std::promise<std::uint16_t> promise;
  std::future<std::uint16_t> future = promise.get_future();
  serve::TcpOptions options;
  options.tick_ms = 20;
  options.on_listen = [&promise](std::uint16_t p) { promise.set_value(p); };
  std::thread server([&service, options] {
    std::string error;
    EXPECT_EQ(serve::serve_tcp(service, "127.0.0.1:0", &error, options), 0)
        << error;
  });
  const std::string target = "127.0.0.1:" + std::to_string(future.get());

  Rng rng(31337);
  std::string stream;
  std::vector<int> sent_ids;
  std::size_t expected_responses = 0;
  for (int i = 0; i < 40; ++i) {
    switch (rng.uniform(0, 3)) {
      case 0:
        stream += "{\"id\":" + std::to_string(i) + ",\"op\":\"ping\"}\n";
        sent_ids.push_back(i);
        ++expected_responses;
        break;
      case 1:
        stream += "{\"id\":" + std::to_string(i) +
                  ",\"op\":\"solve\",\"spec\":\"uniform:n=10,m=2,seed=" +
                  std::to_string(1 + i % 4) + "\"}\n";
        sent_ids.push_back(i);
        ++expected_responses;
        break;
      case 2:
        stream += "%% not json at all %%\n";  // parse_error, no id echo
        ++expected_responses;
        break;
      default:
        stream += "\n";  // blank: skipped, no response
        break;
    }
  }
  serve::TcpClient client;
  std::string error;
  ASSERT_TRUE(client.connect(target, &error)) << error;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    const auto chunk = static_cast<std::size_t>(
        rng.uniform(1, static_cast<std::int64_t>(stream.size() - offset)));
    ASSERT_TRUE(client.send_bytes(stream.data() + offset, chunk));
    offset += chunk;
  }
  client.shutdown_write();
  std::vector<int> got_ids;
  std::size_t responses = 0;
  std::string line;
  while (client.recv_line(&line)) {
    ++responses;
    const std::optional<Json> document = json_parse(line);
    ASSERT_TRUE(document.has_value()) << line;
    // Garbage lines come back as named errors with a null id; the order
    // contract is checked over the id-carrying successful responses.
    if (document->find("error") == nullptr)
      got_ids.push_back(static_cast<int>(document->find("id")->as_number()));
  }
  EXPECT_EQ(responses, expected_responses);
  EXPECT_EQ(got_ids, sent_ids) << "responses reordered or dropped";

  serve::request_stop();
  server.join();
  serve::reset_stop();
}

// ---------------- session churn fuzz ----------------

// Model-based fuzzing of the online-session ops: random interleavings of
// open/submit/cancel/snapshot/close — including cancels of unknown jobs,
// double-cancels, cancels after snapshots, ops on unknown or closed
// sessions, reopened names, and the open-session cap — replayed against a
// live Service and checked op-by-op against an independent model. Every
// defect must map to exactly the named wire error the model predicts, and
// every snapshot must report a valid schedule. Returns the full response
// transcript so the caller can assert per-seed determinism.
std::string churn_fuzz_round(std::uint64_t seed) {
  struct SessionModel {
    std::set<std::uint64_t> alive;
    std::uint64_t next_id = 0;
  };
  Rng rng(0x5e551a5eULL ^ seed * 0x9e3779b97f4a7c15ULL);
  serve::ServiceOptions options;
  options.shards = static_cast<unsigned>(rng.uniform(1, 4));
  options.budget_ms = 5;
  options.session_limit = 3;
  serve::Service service(options);
  std::map<std::string, SessionModel> open;
  const char* names[] = {"s0", "s1", "s2", "s3"};
  std::string transcript;
  for (int step = 0; step < 60; ++step) {
    const std::string session =
        names[static_cast<std::size_t>(rng.uniform(0, 3))];
    const auto found = open.find(session);
    const bool exists = found != open.end();
    const std::int64_t action = rng.uniform(0, 9);
    std::string line, expect;
    bool is_snapshot = false;
    if (action <= 1) {
      line = R"({"op":"open_session","session":")" + session +
             R"(","machines":)" + std::to_string(rng.uniform(1, 4)) + "}";
      if (exists) expect = "\"error\":\"bad_request\"";
      else if (open.size() >= options.session_limit)
        expect = "\"error\":\"session_limit\"";
      else {
        expect = "\"op\":\"open_session\"";
        open.emplace(session, SessionModel{});
      }
    } else if (action <= 4) {
      line = R"({"op":"submit_job","session":")" + session +
             R"(","class":"c)" + std::to_string(rng.uniform(0, 2)) +
             R"(","size":)" + std::to_string(rng.uniform(1, 40)) + "}";
      if (!exists) {
        expect = "\"error\":\"unknown_session\"";
      } else {
        expect = "\"job\":" + std::to_string(found->second.next_id);
        found->second.alive.insert(found->second.next_id++);
      }
    } else if (action <= 6) {
      // Half the cancels aim at a model-chosen alive job, half at an
      // arbitrary id — which may be dead (double-cancel), never assigned,
      // or accidentally alive; the model decides which response is right.
      std::uint64_t target = static_cast<std::uint64_t>(rng.uniform(0, 9));
      if (exists && !found->second.alive.empty() && rng.uniform(0, 1) == 0) {
        auto it = found->second.alive.begin();
        std::advance(it, rng.uniform(0, static_cast<std::int64_t>(
                                            found->second.alive.size()) -
                                            1));
        target = *it;
      }
      line = R"({"op":"cancel_job","session":")" + session + R"(","job":)" +
             std::to_string(target) + "}";
      if (!exists) {
        expect = "\"error\":\"unknown_session\"";
      } else if (found->second.alive.count(target) > 0) {
        expect = "\"cancelled\":true";
        found->second.alive.erase(target);
      } else {
        expect = "\"error\":\"unknown_job\"";
      }
    } else if (action <= 7) {
      line = R"({"op":"snapshot","session":")" + session + "\"}";
      if (!exists) {
        expect = "\"error\":\"unknown_session\"";
      } else {
        expect = "\"jobs\":" + std::to_string(found->second.alive.size());
        is_snapshot = true;
      }
    } else {
      line = R"({"op":"close_session","session":")" + session + "\"}";
      if (!exists) {
        expect = "\"error\":\"unknown_session\"";
      } else {
        expect = "\"op\":\"close_session\"";
        open.erase(found);
      }
    }
    const std::string response = service.handle(line);
    EXPECT_NE(response.find(expect), std::string::npos)
        << "seed " << seed << " step " << step << ": " << line << " -> "
        << response;
    // A snapshot of an open session is never an invalid schedule, however
    // adversarial the preceding churn was.
    if (is_snapshot) {
      EXPECT_NE(response.find("\"valid\":true"), std::string::npos)
          << "seed " << seed << " step " << step << ": " << response;
    }
    transcript += response;
    transcript += '\n';
  }
  return transcript;
}

TEST(SessionChurnFuzz, RandomInterleavingsMatchTheModel) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed)
    EXPECT_FALSE(churn_fuzz_round(seed).empty());
}

TEST(SessionChurnFuzz, RoundsAreDeterministicPerSeed) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    EXPECT_EQ(churn_fuzz_round(seed), churn_fuzz_round(seed)) << seed;
}

// ---------------- cross-algorithm coherence ----------------

TEST(CoherenceFuzz, AllAlgorithmsDominateExactAndRespectBounds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Instance instance = generate(
        seed % 2 ? Family::kBimodal : Family::kSatellite, 8, 3, seed);
    const ExactResult exact = exact_makespan(instance);
    ASSERT_TRUE(exact.optimal);
    const double opt = static_cast<double>(exact.makespan);
    const Time T = lower_bounds(instance).combined;
    EXPECT_GE(opt, static_cast<double>(T));

    const struct {
      AlgoResult result;
      double guarantee;
    } runs[] = {
        {five_thirds(instance), 5.0 / 3.0},
        {three_halves(instance), 1.5},
        {merge_lpt(instance), 2.0},
        {hebrard_insertion(instance), 2.0},
    };
    for (const auto& run : runs) {
      EXPECT_TRUE(is_valid(instance, run.result.schedule)) << run.result.name;
      const double makespan = run.result.schedule.makespan(instance);
      EXPECT_GE(makespan, opt - 1e-9) << run.result.name;
      EXPECT_LE(makespan, run.guarantee * opt + 1e-9)
          << run.result.name << " seed " << seed;
    }
  }
}

TEST(CoherenceFuzz, ScaledSchedulesAgreeAfterRescale) {
  // Rescaling a schedule must not change validity or the real makespan.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Instance instance = generate(Family::kUniform, 30, 4, seed);
    AlgoResult result = three_halves(instance);
    const double before = result.schedule.makespan(instance);
    result.schedule.rescale(7);
    EXPECT_TRUE(is_valid(instance, result.schedule));
    EXPECT_NEAR(result.schedule.makespan(instance), before, 1e-9);
  }
}

TEST(CoherenceFuzz, LowerBoundGrowsWithAddedJobs) {
  // Adding a job never decreases any component of the lower bound.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Instance instance = generate(Family::kUniform, 25, 4, seed);
    const LowerBounds before = lower_bounds(instance);
    instance.add_job(instance.job_class(0), instance.max_size() + 1);
    const LowerBounds after = lower_bounds(instance);
    EXPECT_GE(after.area, before.area);
    EXPECT_GE(after.class_bound, before.class_bound);
    EXPECT_GE(after.combined, before.combined);
  }
}

}  // namespace
}  // namespace msrs
