// Tests for the thread pool / parallel_for harness substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace msrs {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SubmitTaskReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit_task([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SubmitTaskSupportsNonTrivialResultTypes) {
  ThreadPool pool(2);
  auto future = pool.submit_task([] { return std::string("racing"); });
  EXPECT_EQ(future.get(), "racing");
}

TEST(ThreadPool, SubmitTaskCapturesExceptionsInTheFuture) {
  ThreadPool pool(2);
  auto future = pool.submit_task(
      []() -> int { throw std::runtime_error("solver failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasksThenRefusesNewOnes) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i)
    EXPECT_TRUE(pool.submit([&counter] { counter.fetch_add(1); }));
  EXPECT_TRUE(pool.shutdown(std::chrono::seconds(60)));
  EXPECT_EQ(counter.load(), 64);
  EXPECT_FALSE(pool.submit([&counter] { counter.fetch_add(1); }));
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ShutdownDeadlineDropsQueuedButFinishesRunning) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  // One task blocks the single worker; the rest stay queued past the
  // (tiny) deadline and must be dropped without being run. The gate is
  // released only after a full second, so the 5 ms shutdown deadline
  // verdict cannot race the worker even on a badly loaded machine.
  pool.submit([gate, &ran] {
    gate.wait();
    ran.fetch_add(1);
  });
  for (int i = 0; i < 8; ++i)
    pool.submit([&ran] { ran.fetch_add(1); });
  std::thread unblock([&release] {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    release.set_value();
  });
  EXPECT_FALSE(pool.shutdown(std::chrono::milliseconds(5)));
  unblock.join();
  EXPECT_EQ(ran.load(), 1);  // the running task finished; queued dropped
}

TEST(ThreadPool, SubmitTaskAfterShutdownYieldsNamedError) {
  ThreadPool pool(2);
  pool.shutdown(std::chrono::seconds(60));
  auto future = pool.submit_task([] { return 42; });
  // The refusal surfaces as a descriptive exception, not broken_promise.
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotentAndDestructorSafe) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  EXPECT_TRUE(pool.shutdown(std::chrono::seconds(60)));
  EXPECT_TRUE(pool.shutdown(std::chrono::seconds(60)));  // no-op
  EXPECT_EQ(counter.load(), 1);
}  // destructor runs after shutdown: must not deadlock or double-join

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleton) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; }, 4);
  EXPECT_EQ(count, 0);
  parallel_for(7, 8, [&](std::size_t i) { count += static_cast<int>(i); }, 4);
  EXPECT_EQ(count, 7);
}

TEST(ParallelFor, DeterministicResultsRegardlessOfThreads) {
  auto compute = [](unsigned threads) {
    std::vector<double> out(512);
    parallel_for(0, out.size(),
                 [&](std::size_t i) { out[i] = static_cast<double>(i * i); },
                 threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  EXPECT_DOUBLE_EQ(compute(1), compute(8));
}

}  // namespace
}  // namespace msrs
