// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/validate.hpp"
#include "sim/generator.hpp"

namespace msrs::test {

// Builds an instance from per-class job size lists.
inline Instance make_instance(int machines,
                              std::vector<std::vector<Time>> classes) {
  return Instance(machines, classes);
}

// The deterministic seed corpus (seeds 1..seeds) of one generator cell —
// the same instances bench_common's quality rows measure, so a test
// sweeping it pins exactly what the benches report on.
inline std::vector<Instance> seed_instances(Family family, int jobs,
                                            int machines, int seeds) {
  GeneratorSpec base;
  base.family = family;
  base.jobs = jobs;
  base.machines = machines;
  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(seeds));
  for (CorpusEntry& entry : seed_corpus(base, seeds))
    instances.push_back(std::move(entry.instance));
  return instances;
}

// gtest assertion: schedule valid and all jobs done by `limit_num/limit_den`
// times the instance-unit bound `T`.
inline ::testing::AssertionResult schedule_within(
    const Instance& instance, const Schedule& schedule, Time T,
    Time ratio_num, Time ratio_den) {
  const auto report = validate(instance, schedule);
  if (!report.ok())
    return ::testing::AssertionFailure() << report.summary();
  if (!schedule.complete())
    return ::testing::AssertionFailure() << "schedule incomplete";
  // makespan_scaled <= (num/den) * T * scale  <=>  den*ms <= num*T*scale
  const Time ms = schedule.makespan_scaled(instance);
  if (ratio_den * ms > ratio_num * T * schedule.scale())
    return ::testing::AssertionFailure()
           << "makespan " << ms << "/" << schedule.scale() << " exceeds "
           << ratio_num << "/" << ratio_den << " * " << T;
  return ::testing::AssertionSuccess();
}

}  // namespace msrs::test
