#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/json.hpp"

namespace msrs::obs {
namespace {

TEST(Counter, StartsAtZeroAndSums) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Counter, ConcurrentRecordersMergeExactly) {
  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.inc();
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddAndNegativeValues) {
  Gauge gauge;
  gauge.set(7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
}

TEST(Histogram, EmptySnapshot) {
  Histogram histogram{latency_buckets_us()};
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_EQ(snap.counts.size(), snap.bounds.size() + 1);
}

TEST(Histogram, SingleSample) {
  Histogram histogram{latency_buckets_us()};
  histogram.record(42.0);
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_NEAR(snap.sum, 42.0, 1e-3);
  // The only sample lies in the (20, 50] bucket: every quantile
  // interpolates inside it.
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_GT(snap.quantile(q), 20.0);
    EXPECT_LE(snap.quantile(q), 50.0);
  }
}

TEST(Histogram, BucketBoundaryValuesLandInTheLowerBucket) {
  // Bounds are inclusive upper edges (Prometheus `le` semantics): a sample
  // equal to a bound belongs to that bound's bucket, one epsilon above to
  // the next.
  Histogram histogram{latency_buckets_us()};
  histogram.record(10.0);
  histogram.record(10.0001);
  const Histogram::Snapshot snap = histogram.snapshot();
  // Bucket index 3 has upper bound 10; bucket 4 has upper bound 20.
  EXPECT_EQ(snap.bounds[3], 10.0);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.counts[4], 1u);
}

TEST(Histogram, NegativeSamplesClampToZero) {
  Histogram histogram{latency_buckets_us()};
  histogram.record(-5.0);
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.counts.front(), 1u);
  EXPECT_EQ(snap.sum, 0.0);
}

TEST(Histogram, OverflowBucketReportsLastFiniteBound) {
  Histogram histogram{latency_buckets_us()};
  histogram.record(9e9);  // far beyond the 5s ladder
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.counts.back(), 1u);
  EXPECT_EQ(snap.quantile(0.5), snap.bounds.back());
}

TEST(Histogram, QuantilesAreMonotoneAndBracketed) {
  Histogram histogram{latency_buckets_us()};
  for (int i = 1; i <= 1000; ++i) histogram.record(static_cast<double>(i));
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  double previous = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double value = snap.quantile(q);
    EXPECT_GE(value, previous);
    previous = value;
  }
  // p50 of uniform 1..1000 must land in the (500, 1000] bucket.
  EXPECT_GT(snap.quantile(0.5), 200.0);
  EXPECT_LE(snap.quantile(0.5), 1000.0);
}

TEST(Histogram, ConcurrentRecordersMergeExactly) {
  Histogram histogram{latency_buckets_us()};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i)
        histogram.record(static_cast<double>(i % 100));
    });
  for (std::thread& thread : threads) thread.join();
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Per-thread sums are identical, so the merged sum is exact.
  double expected = 0.0;
  for (int i = 0; i < kPerThread; ++i) expected += i % 100;
  EXPECT_NEAR(snap.sum, expected * kThreads, 1.0);
}

TEST(Registry, MetricsAreCreatedOnceAndKeepTheirAddress) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  registry.counter("y").inc();
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(registry.snapshot().counter_or("x"), 3u);
}

TEST(Registry, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("zeta").inc();
  registry.counter("alpha").inc();
  registry.counter("mid").inc();
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zeta");
}

TEST(Registry, SnapshotRenderingIsByteStable) {
  // Two registries with the same metric state but different registration
  // orders must render identical bytes in both exposition formats.
  MetricsRegistry first, second;
  first.counter("serve.received").add(10);
  first.gauge("serve.depth").set(2);
  first.histogram("serve.latency_us").record(42.0);
  second.histogram("serve.latency_us").record(42.0);
  second.gauge("serve.depth").set(2);
  second.counter("serve.received").add(10);
  EXPECT_EQ(first.snapshot().json().str(), second.snapshot().json().str());
  EXPECT_EQ(first.snapshot().prometheus(), second.snapshot().prometheus());
}

TEST(Registry, PrometheusRenderHasTypedSeries) {
  MetricsRegistry registry;
  registry.counter("serve.received").add(5);
  registry.gauge("serve.conns.active").set(2);
  registry.histogram("serve.latency.total_us").record(42.0);
  const std::string page = registry.snapshot().prometheus();
  EXPECT_NE(page.find("# TYPE msrs_serve_received counter"),
            std::string::npos);
  EXPECT_NE(page.find("msrs_serve_received 5"), std::string::npos);
  EXPECT_NE(page.find("# TYPE msrs_serve_conns_active gauge"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE msrs_serve_latency_total_us histogram"),
            std::string::npos);
  EXPECT_NE(page.find("msrs_serve_latency_total_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(page.find("msrs_serve_latency_total_us_count 1"),
            std::string::npos);
}

TEST(Registry, JsonExpositionCarriesQuantiles) {
  MetricsRegistry registry;
  for (int i = 0; i < 100; ++i)
    registry.histogram("h").record(static_cast<double>(i));
  const Json document = registry.snapshot().json();
  const Json* histograms = document.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* h = histograms->find("h");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->find("count"), nullptr);
  EXPECT_EQ(h->find("count")->as_number(), 100.0);
  ASSERT_NE(h->find("p50"), nullptr);
  ASSERT_NE(h->find("p99"), nullptr);
  EXPECT_LE(h->find("p50")->as_number(), h->find("p99")->as_number());
}

TEST(Prometheus, NameMangling) {
  // Dots (and anything non-alphanumeric) flatten to '_' under the msrs_
  // namespace prefix.
  EXPECT_EQ(prometheus_name("serve.received"), "msrs_serve_received");
  EXPECT_EQ(prometheus_name("a-b c/d"), "msrs_a_b_c_d");
  EXPECT_EQ(prometheus_name("ok_name_42"), "msrs_ok_name_42");
}

TEST(Prometheus, LabelValueEscaping) {
  // The exposition format requires \\, \" and \n escaped inside label
  // values — everything else passes through raw.
  EXPECT_EQ(prometheus_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_label_value("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(prometheus_label_value("g++ (GCC) 13.2\n\"x\\y\""),
            "g++ (GCC) 13.2\\n\\\"x\\\\y\\\"");
}

TEST(Prometheus, InfoSeriesRenderFirstWithEscapedLabels) {
  MetricsRegistry registry;
  registry.counter("serve.received").add(5);
  MetricsSnapshot snapshot = registry.snapshot();
  snapshot.info.emplace_back(
      "build_info",
      std::vector<std::pair<std::string, std::string>>{
          {"wire", "1"}, {"compiler", "gcc \"13\"\nrelease"}});
  const std::string page = snapshot.prometheus();
  const std::size_t info_at =
      page.find("msrs_build_info{wire=\"1\","
                "compiler=\"gcc \\\"13\\\"\\nrelease\"} 1");
  const std::size_t counter_at = page.find("msrs_serve_received 5");
  ASSERT_NE(info_at, std::string::npos) << page;
  ASSERT_NE(counter_at, std::string::npos);
  EXPECT_LT(info_at, counter_at);  // info series lead the page
  EXPECT_NE(page.find("# TYPE msrs_build_info gauge"), std::string::npos);
  // The JSON exposition carries the same labels under "info".
  const Json document = snapshot.json();
  const Json* info = document.find("info");
  ASSERT_NE(info, nullptr);
  const Json* build = info->find("build_info");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->find("wire")->as_string(), "1");
}

TEST(Prometheus, NoInfoMeansNoInfoKeyInJson) {
  MetricsRegistry registry;
  registry.counter("x").inc();
  EXPECT_EQ(registry.snapshot().json().find("info"), nullptr);
}

TEST(Trace, SpanLineIsValidJson) {
  Span span;
  span.seq = 7;
  span.shard = 2;
  span.solver = "three_halves";
  span.cache = "miss";
  span.admission_us = 1.5;
  span.queue_us = 2.5;
  span.solve_us = 100.0;
  span.write_us = 0.5;
  span.total_us = 104.5;
  const std::optional<Json> parsed = json_parse(span.line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("seq")->as_number(), 7.0);
  EXPECT_EQ(parsed->find("shard")->as_number(), 2.0);
  EXPECT_EQ(parsed->find("solver")->as_string(), "three_halves");
  EXPECT_EQ(parsed->find("cache")->as_string(), "miss");
  EXPECT_EQ(parsed->find("total_us")->as_number(), 104.5);
}

TEST(Trace, SamplingIsDeterministicInSeq) {
  TraceOptions options;
  options.path = "-";  // stderr sink: sampled() needs an open sink
  options.sample_every = 4;
  Tracer tracer(options);
  EXPECT_TRUE(tracer.sampled(0));
  EXPECT_FALSE(tracer.sampled(1));
  EXPECT_FALSE(tracer.sampled(3));
  EXPECT_TRUE(tracer.sampled(4));
}

TEST(Trace, NoSinkMeansNoSampling) {
  Tracer tracer(TraceOptions{});
  EXPECT_FALSE(tracer.sampled(0));
  EXPECT_FALSE(tracer.failed());
}

TEST(Trace, SlowThreshold) {
  TraceOptions options;
  options.slow_ms = 10.0;
  Tracer tracer(options);
  EXPECT_FALSE(tracer.slow(9999.0));
  EXPECT_TRUE(tracer.slow(10000.0));
  options.slow_ms = 0.0;  // disabled
  Tracer off(options);
  EXPECT_FALSE(off.slow(1e12));
}

TEST(Trace, FileSinkWritesSampledJsonl) {
  const std::string path = ::testing::TempDir() + "msrs_trace_test.jsonl";
  {
    TraceOptions options;
    options.path = path;
    options.sample_every = 2;
    options.slow_ms = 0.0;
    Tracer tracer(options);
    ASSERT_FALSE(tracer.failed());
    for (std::uint64_t seq = 0; seq < 6; ++seq) {
      Span span;
      span.seq = seq;
      span.total_us = 1.0;
      tracer.observe(span);
    }
    tracer.flush();
  }
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::string line;
  std::vector<std::uint64_t> seqs;
  while (std::getline(file, line)) {
    const std::optional<Json> parsed = json_parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    seqs.push_back(
        static_cast<std::uint64_t>(parsed->find("seq")->as_number()));
  }
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 2, 4}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msrs::obs
