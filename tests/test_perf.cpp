// Tests of the perf-harness subsystem (src/perf): deterministic-mode
// reproducibility, the BENCH_*.json schema round-trip, the bench CLI's
// named errors, and the allocation counter.
#include <gtest/gtest.h>

#include <sstream>

#include "perf/perf.hpp"
#include "util/json.hpp"

namespace msrs::perf {
namespace {

// --- util/json -------------------------------------------------------------

TEST(Json, WriterParserRoundTrip) {
  Json doc = Json::object();
  doc.set("text", "line\nwith \"quotes\" and \\slashes\\");
  doc.set("int", static_cast<std::int64_t>(42));
  doc.set("pi", 3.141592653589793);
  doc.set("flag", true);
  doc.set("nothing", Json());
  Json arr = Json::array();
  arr.push_back(1.5);
  arr.push_back("two");
  arr.push_back(Json::object());
  doc.set("arr", std::move(arr));

  for (const int indent : {0, 2}) {
    std::string error;
    const auto back = json_parse(doc.str(indent), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_TRUE(doc == *back) << doc.str(2) << "\nvs\n" << back->str(2);
  }
}

TEST(Json, ParserRejectsMalformedInputWithNamedErrors) {
  const std::pair<const char*, const char*> cases[] = {
      {"{", "expected '\"'"},
      {"{\"a\": 1,}", "expected '\"'"},
      {"[1, 2", "expected ',' or ']'"},
      {"\"unterminated", "unterminated string"},
      {"{\"a\" 1}", "expected ':'"},
      {"nul", "expected a value"},
      {"{} trailing", "trailing bytes"},
  };
  for (const auto& [text, expected] : cases) {
    std::string error;
    EXPECT_FALSE(json_parse(text, &error).has_value()) << text;
    EXPECT_NE(error.find(expected), std::string::npos)
        << "input: " << text << " error: " << error;
  }
}

TEST(Json, ParserBoundsNestingDepth) {
  // Untrusted input (the serving layer's wire protocol) must not be able
  // to overflow the parser's stack: one level of recursion per '[', so a
  // 100k-bracket bomb without the cap would kill the process.
  const std::string bomb(100000, '[');
  std::string error;
  EXPECT_FALSE(json_parse(bomb, &error).has_value());
  EXPECT_NE(error.find("nesting"), std::string::npos) << error;

  // Well under the cap still parses.
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_TRUE(json_parse(deep).has_value());
}

TEST(Json, NumberFormattingIsCanonical) {
  EXPECT_EQ(Json(static_cast<std::int64_t>(1000000)).str(), "1000000");
  EXPECT_EQ(Json(1.5).str(), "1.5");
  // Round-trips exactly even for doubles needing 17 digits.
  const double awkward = 0.1 + 0.2;
  std::string error;
  const auto back = json_parse(Json(awkward).str(), &error);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_number(), awkward);
}

// --- Runner / alloc counter ------------------------------------------------

TEST(Runner, DeterministicModeRunsExactRepeatCount) {
  RunnerOptions options;
  options.warmup = 2;
  options.repeats = 7;
  options.timing = false;
  int calls = 0;
  const Measurement m = Runner(options).measure([&] { ++calls; });
  EXPECT_EQ(calls, 9);  // warmup + repeats
  EXPECT_EQ(m.ops, 7u);
  EXPECT_EQ(m.ns_per_op, 0.0);  // no clocks in deterministic mode
}

TEST(Runner, TimingModeMeasuresAndHonorsMinTime) {
  RunnerOptions options;
  options.warmup = 0;
  options.repeats = 3;
  options.min_time_ms = 1.0;
  options.timing = true;
  const Measurement m = Runner(options).measure([] {
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  });
  EXPECT_GE(m.ops, 3u);
  EXPECT_GT(m.ns_per_op, 0.0);
  EXPECT_LE(m.ns_p25, m.ns_per_op);
  EXPECT_GE(m.ns_p75, m.ns_per_op);
}

TEST(AllocCounter, CountsHeapAllocationsWhenEnabled) {
  if (!alloc_counting_enabled()) GTEST_SKIP() << "counting disabled (ASan)";
  const std::uint64_t allocs = count_allocs([] {
    std::vector<int> v(1000);
    ASSERT_NE(v.data(), nullptr);
  });
  EXPECT_GE(allocs, 1u);
  const std::uint64_t none = count_allocs([] {
    volatile int sink = 7;
    (void)sink;
  });
  EXPECT_EQ(none, 0u);
}

// --- registry + determinism ------------------------------------------------

TEST(BenchRegistry, DefaultRegistryHasTheTwelveECases) {
  const BenchRegistry& registry = BenchRegistry::default_registry();
  const char* expected[] = {
      "e1_ratio_53", "e2_ratio_32",   "e3_vs_baseline", "e4_runtime",
      "e5_nfold",    "e6_eptas",      "e7_hardness",    "e8_completion",
      "e9_bounds",   "e10_ablation",  "e11_engine",     "e12_generator",
  };
  for (const char* name : expected) {
    const BenchCase* bench_case = registry.find(name);
    ASSERT_NE(bench_case, nullptr) << name;
    EXPECT_EQ(bench_case->tier(), Tier::kQuick) << name;
    EXPECT_FALSE(bench_case->description().empty()) << name;
    EXPECT_FALSE(bench_case->paper_ref().empty()) << name;
  }
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(BenchRegistry, RejectsDuplicateNames) {
  BenchRegistry registry;
  registry.add(make_case("a", "d", "p", Tier::kQuick,
                         [](const Runner&) { return std::vector<BenchRow>{}; }));
  EXPECT_THROW(
      registry.add(make_case("a", "d2", "p2", Tier::kQuick,
                             [](const Runner&) {
                               return std::vector<BenchRow>{};
                             })),
      std::invalid_argument);
}

// Repeated runs of the same case in deterministic mode must produce
// identical rows — op counts, makespans, allocation counts, and the
// serialized JSON byte for byte.
TEST(BenchCaseDeterminism, SameCaseTwiceSerializesIdentically) {
  const BenchRegistry& registry = BenchRegistry::default_registry();
  RunnerOptions options;
  options.warmup = 0;
  options.repeats = 2;
  options.timing = false;
  const Runner runner(options);
  for (const char* name : {"e4_runtime", "e9_bounds"}) {
    const BenchCase* bench_case = registry.find(name);
    ASSERT_NE(bench_case, nullptr);
    CaseResult a, b;
    a.name = b.name = name;
    a.rows = bench_case->run(runner);
    b.rows = bench_case->run(runner);
    ASSERT_FALSE(a.rows.empty());
    EXPECT_EQ(bench_json(a).str(2), bench_json(b).str(2)) << name;
  }
}

// --- JsonReporter ----------------------------------------------------------

CaseResult sample_result(bool timing) {
  CaseResult result;
  result.name = "sample";
  result.description = "sample case";
  result.paper_ref = "Note 1";
  result.timing = timing;
  BenchRow row;
  row.name = "row1";
  row.solver = "three_halves";
  row.jobs = 64;
  row.machines = 4;
  row.makespan_ratio = 1.25;
  row.counters.emplace_back("ratio_max", 1.5);
  row.timing.ops = 5;
  row.timing.ns_per_op = 1234.5;
  row.timing.allocs_per_op = 2;
  result.rows.push_back(std::move(row));
  return result;
}

TEST(JsonReporter, OutputRoundTripsThroughAParse) {
  for (const bool timing : {false, true}) {
    const Json document = bench_json(sample_result(timing));
    std::string error;
    const auto back = json_parse(document.str(2), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_TRUE(document == *back);
    EXPECT_EQ(check_bench_schema(*back), "");
    // The timing object is present exactly when measured.
    const Json* row = &back->find("rows")->items().front();
    EXPECT_EQ(row->find("timing") != nullptr, timing);
    EXPECT_EQ(back->find("deterministic")->as_bool(), !timing);
  }
}

TEST(JsonReporter, SchemaCheckNamesTheProblem) {
  Json bad = bench_json(sample_result(false));
  bad.set("schema_version", "one");
  EXPECT_NE(check_bench_schema(bad).find("schema_version"),
            std::string::npos);
  EXPECT_NE(check_bench_schema(Json(1.0)), "");
}

TEST(JsonReporter, WritesBenchFileToDirectory) {
  const CaseResult result = sample_result(false);
  EXPECT_EQ(write_bench_json(result, testing::TempDir()), "");
  const std::string bad =
      write_bench_json(result, "/nonexistent-dir-for-sure");
  EXPECT_NE(bad.find("cannot write"), std::string::npos);
}

// --- bench CLI named errors ------------------------------------------------

int run_cli(const std::vector<std::string>& args, std::string* err_text) {
  std::ostringstream out, err;
  const int code = run_bench_cli(args, "", out, err);
  *err_text = err.str();
  return code;
}

TEST(BenchCli, MalformedArgumentsProduceNamedErrors) {
  struct Case {
    std::vector<std::string> args;
    const char* expected;
  };
  const Case cases[] = {
      {{"e99_nothing"}, "unknown case 'e99_nothing'"},
      {{"--repeats=two"}, "bad numeric value in '--repeats=two'"},
      {{"--repeats=0"}, "--repeats must be >= 1"},
      {{"--tier=fast"}, "bad --tier 'fast'"},
      {{"--frobnicate"}, "unknown option '--frobnicate'"},
      {{"--baseline=/tmp"}, "--baseline requires --timing"},
      {{"--spec=bogus:n=1"}, "bad spec 'bogus:n=1'"},
      {{"--sweep=families=bogus"}, "bad sweep 'families=bogus'"},
      {{"--spec=uniform", "--solvers=nope"}, "unknown solver 'nope'"},
      {{"--max-regression=-1"}, "--max-regression must be > 0"},
  };
  for (const Case& c : cases) {
    std::string err_text;
    EXPECT_EQ(run_cli(c.args, &err_text), 2) << c.expected;
    EXPECT_NE(err_text.find(c.expected), std::string::npos) << err_text;
    EXPECT_NE(err_text.find("bench: "), std::string::npos) << err_text;
  }
}

TEST(BenchCli, ListAndHelpSucceed) {
  std::string err_text;
  EXPECT_EQ(run_cli({"--list"}, &err_text), 0);
  EXPECT_EQ(run_cli({"--help"}, &err_text), 0);
}

TEST(BenchCli, CorpusSpecBenchesOnlyTheCorpus) {
  std::ostringstream out, err;
  const int code = run_bench_cli(
      {"--spec=uniform:n=12,m=3", "--count=1", "--solvers=three_halves",
       "--repeats=1", "--warmup=0"},
      "", out, err);
  EXPECT_EQ(code, 0) << err.str();
  EXPECT_NE(out.str().find("corpus1_uniform"), std::string::npos);
  EXPECT_EQ(out.str().find("e1_ratio_53"), std::string::npos);
}

}  // namespace
}  // namespace msrs::perf
