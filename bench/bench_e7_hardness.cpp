// E7 — Theorem 23 / Lemma 24: the reduction's 4-vs-5 gap. For each formula
// size: build the gadget, verify the constructive makespan-4 schedule on
// satisfiable formulas (ground truth by DPLL), the makespan-5 trivial
// schedule, decode round-trips, and the implied inapproximability ratio
// 5/4. Also times the gadget construction (polynomial, near-linear).
#include <benchmark/benchmark.h>

#include "multires/mschedule.hpp"
#include "multires/reduction.hpp"
#include "multires/sat.hpp"

namespace {

using namespace msrs;

void BM_HardnessGap(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  double sat_rate = 0.0, decode_ok = 0.0, gap = 0.0, jobs = 0.0;
  for (auto _ : state) {
    int sat = 0, decoded = 0, total = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const Cnf formula = generate_monotone22(vars, seed);
      const auto model = dpll(formula);
      const Reduction red = build_reduction(formula);
      jobs = red.instance.num_jobs();
      ++total;
      if (model.has_value()) {
        ++sat;
        const MSchedule schedule = schedule_from_assignment(red, *model);
        if (validate_multi(red.instance, schedule, 4).ok()) {
          const auto back = assignment_from_schedule(red, schedule);
          if (back && formula.satisfied_by(*back)) ++decoded;
        }
      }
      // The 5-schedule always exists.
      const MSchedule fallback = trivial_schedule(red);
      benchmark::DoNotOptimize(
          validate_multi(red.instance, fallback, 5).ok());
    }
    sat_rate = static_cast<double>(sat) / total;
    decode_ok = sat > 0 ? static_cast<double>(decoded) / sat : 1.0;
    gap = 5.0 / 4.0;
  }
  state.counters["sat_rate"] = sat_rate;
  state.counters["decode_roundtrip"] = decode_ok;
  state.counters["gap"] = gap;
  state.counters["gadget_jobs"] = jobs;
}
BENCHMARK(BM_HardnessGap)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

// Construction cost: the reduction is the paper's polynomial transformation.
void BM_GadgetConstruction(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const Cnf formula = generate_monotone22(vars, 1);
  for (auto _ : state) {
    const Reduction red = build_reduction(formula);
    benchmark::DoNotOptimize(red.instance.num_jobs());
  }
  state.SetComplexityN(vars);
}
BENCHMARK(BM_GadgetConstruction)
    ->Arg(6)
    ->Arg(24)
    ->Arg(96)
    ->Arg(384)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
