// E7 — Theorem 23 / Lemma 24: the 4-vs-5 hardness gadget.
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e7_hardness" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e7_hardness");
}
