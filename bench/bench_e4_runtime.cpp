// E4 — running-time shape: Theorem 2 promises O(|I|) for Algorithm_5/3 and
// Theorem 7 promises O(n + m log m) for Algorithm_3/2. Timing sweep over n;
// the per-row time should scale linearly (google-benchmark reports
// wall-clock per iteration; divide consecutive rows to see the slope).
#include "algo/baselines.hpp"
#include "algo/five_thirds.hpp"
#include "algo/t_bound.hpp"
#include "algo/three_halves.hpp"
#include "bench_common.hpp"

namespace {

using namespace msrs;

const Instance& cached_instance(int jobs, int machines) {
  static std::map<std::pair<int, int>, Instance> cache;
  const auto key = std::make_pair(jobs, machines);
  auto it = cache.find(key);
  if (it == cache.end())
    it = cache.emplace(key, generate(Family::kUniform, jobs, machines, 42))
             .first;
  return it->second;
}

void BM_FiveThirdsRuntime(benchmark::State& state) {
  const auto& instance = cached_instance(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(five_thirds(instance));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FiveThirdsRuntime)
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({100000, 16})
    ->Args({1000000, 16})
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_ThreeHalvesRuntime(benchmark::State& state) {
  const auto& instance = cached_instance(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(three_halves(instance));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ThreeHalvesRuntime)
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({100000, 16})
    ->Args({1000000, 16})
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_TBoundRuntime(benchmark::State& state) {
  const auto& instance = cached_instance(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(three_halves_bound(instance));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TBoundRuntime)
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({100000, 16})
    ->Args({1000000, 16})
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oN);

void BM_MergeLptRuntime(benchmark::State& state) {
  const auto& instance = cached_instance(static_cast<int>(state.range(0)),
                                         static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(merge_lpt(instance));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MergeLptRuntime)
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({100000, 16})
    ->Args({1000000, 16})
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNLogN);

// Machine sweep at fixed n: the m log m term of Theorem 7.
void BM_ThreeHalvesMachines(benchmark::State& state) {
  const auto& instance = cached_instance(200000,
                                         static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(three_halves(instance));
  }
}
BENCHMARK(BM_ThreeHalvesMachines)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
