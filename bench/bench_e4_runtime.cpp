// E4 — ns/op and allocs/op of the near-linear hot paths (Theorems 2 and 7).
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e4_runtime" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e4_runtime");
}
