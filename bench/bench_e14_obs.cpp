// E14 — telemetry overhead: obs hot paths, snapshot render, stats op.
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e14_obs" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e14_obs");
}
