// E11 — BatchEngine throughput: shard width x canonical-form cache.
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e11_engine" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e11_engine");
}
