// E11 — engine throughput: BatchEngine over a 1000-instance mixed batch.
//
// Sweeps shard width (threads) and the canonical-form cache on/off. The
// batch repeats each unique instance 5 times, so with the cache on only a
// fifth of the portfolio runs execute; counters report solved vs cache_hits
// and items/sec is the end-to-end serving rate.
#include <benchmark/benchmark.h>

#include <vector>

#include "engine/engine.hpp"
#include "sim/workloads.hpp"

namespace {

using namespace msrs;

std::vector<Instance> mixed_batch() {
  // 5 families x 40 seeds x 5 repeats = 1000 instances, 200 unique shapes.
  std::vector<Instance> batch;
  batch.reserve(1000);
  for (int repeat = 0; repeat < 5; ++repeat)
    for (int seed = 1; seed <= 40; ++seed)
      for (const Family family :
           {Family::kUniform, Family::kBimodal, Family::kManySmallClasses,
            Family::kSatellite, Family::kPhotolith})
        batch.push_back(generate(family, 60, 3 + (seed % 3) * 2,
                                 static_cast<std::uint64_t>(seed)));
  return batch;
}

void BM_BatchEngine(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const bool cache = state.range(1) != 0;
  const std::vector<Instance> batch = mixed_batch();

  engine::BatchOptions options;
  options.threads = threads;
  options.cache = cache;
  std::size_t solved = 0, hits = 0;
  for (auto _ : state) {
    engine::BatchEngine batch_engine(
        engine::SolverRegistry::default_registry(), options);
    const auto results = batch_engine.solve(batch);
    benchmark::DoNotOptimize(results.data());
    solved = batch_engine.stats().solved;
    hits = batch_engine.stats().cache_hits;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["solved"] = static_cast<double>(solved);
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.SetLabel((cache ? "cache/" : "nocache/") + std::string("t=") +
                 std::to_string(threads));
}

void args(benchmark::internal::Benchmark* bench) {
  for (int cache : {0, 1})
    for (int threads : {1, 2, 4, 8}) bench->Args({threads, cache});
}
BENCHMARK(BM_BatchEngine)->Apply(args)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
