// E6 — Theorem 14: EPTAS quality vs epsilon against the exact optimum.
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e6_eptas" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e6_eptas");
}
