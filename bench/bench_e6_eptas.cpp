// E6 — Theorem 14: EPTAS quality versus epsilon on constant-m instances,
// measured against the exact optimum (small n) and the lower bound
// (medium n); plus the resource-augmentation mode's machine usage.
#include "algo/exact.hpp"
#include "bench_common.hpp"
#include "ptas/eptas.hpp"

namespace {

using namespace msrs;
using namespace msrs::bench;

void BM_EptasVsExact(benchmark::State& state) {
  const int e = static_cast<int>(state.range(0));
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(1))];
  double mean = 0.0, worst = 1.0, fallbacks = 0.0;
  int samples = 0;
  for (auto _ : state) {
    mean = 0.0;
    worst = 1.0;
    fallbacks = 0.0;
    samples = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const Instance instance = generate(family, 10, 3, seed);
      const EptasResult result =
          eptas(instance, {.e = e, .m_constant = true});
      const ExactResult exact = exact_makespan(instance);
      if (!exact.optimal) continue;
      const double ratio = result.schedule.makespan(instance) /
                           static_cast<double>(exact.makespan);
      mean += ratio;
      worst = std::max(worst, ratio);
      fallbacks += result.used_fallback ? 1.0 : 0.0;
      ++samples;
    }
    if (samples > 0) mean /= samples;
  }
  state.counters["ratio_vs_opt_mean"] = mean;
  state.counters["ratio_vs_opt_max"] = worst;
  state.counters["one_plus_eps"] = 1.0 + 1.0 / e;
  state.counters["fallbacks"] = fallbacks;
  state.SetLabel(std::string(family_name(family)) + "/eps=1over" +
                 std::to_string(e));
}

void args(benchmark::internal::Benchmark* bench) {
  for (int e : {2, 3})
    for (int family : {0, 1, 3, 5, 8}) bench->Args({e, family});
}
BENCHMARK(BM_EptasVsExact)->Apply(args)->Unit(benchmark::kMillisecond);

void BM_EptasAugmentation(benchmark::State& state) {
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(0))];
  double machines_used = 0.0, base_machines = 0.0, ratio_mean = 0.0;
  for (auto _ : state) {
    machines_used = 0.0;
    ratio_mean = 0.0;
    int samples = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Instance instance = generate(family, 40, 6, seed);
      base_machines = instance.machines();
      const EptasResult result =
          eptas(instance, {.e = 2, .m_constant = false});
      machines_used = std::max(machines_used,
                               static_cast<double>(result.machines_used));
      const Time T = lower_bounds(instance).combined;
      ratio_mean += result.schedule.makespan(instance) / static_cast<double>(T);
      ++samples;
    }
    ratio_mean /= samples;
  }
  state.counters["machines"] = base_machines;
  state.counters["machines_used_max"] = machines_used;
  state.counters["ratio_vs_T_mean"] = ratio_mean;
  state.SetLabel(family_name(family));
}
BENCHMARK(BM_EptasAugmentation)
    ->Arg(0)
    ->Arg(1)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
