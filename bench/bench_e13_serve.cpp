// E13 — serving layer: steady-state sharded service + cold dispatch.
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e13_serve" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e13_serve");
}
