// E2 — Theorem 7: Algorithm_3/2 quality per family (and vs the exact optimum).
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e2_ratio_32" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e2_ratio_32");
}
