// E2 — Theorem 7: Algorithm_3/2 stays within 3/2 of the Lemma-9 bound T on
// every workload family; against the true optimum on small instances.
#include "algo/exact.hpp"
#include "algo/three_halves.hpp"
#include "bench_common.hpp"

namespace {

using namespace msrs;
using namespace msrs::bench;

void BM_ThreeHalvesQuality(benchmark::State& state) {
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(0))];
  const int jobs = static_cast<int>(state.range(1));
  const int machines = static_cast<int>(state.range(2));
  QualityRow row;
  for (auto _ : state)
    row = quality_row([](const Instance& i) { return three_halves(i); },
                      family, jobs, machines, /*seeds=*/10);
  report(state, row);
  state.SetLabel(family_name(family));
}

void ratio_args(benchmark::internal::Benchmark* bench) {
  for (int family = 0; family < 9; ++family) {
    bench->Args({family, 60, 4});
    bench->Args({family, 240, 8});
    bench->Args({family, 1000, 16});
  }
}
BENCHMARK(BM_ThreeHalvesQuality)->Apply(ratio_args)->Unit(benchmark::kMillisecond);

void BM_ThreeHalvesVsExact(benchmark::State& state) {
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(0))];
  double worst = 1.0, mean = 0.0;
  int samples = 0;
  for (auto _ : state) {
    worst = 1.0;
    mean = 0.0;
    samples = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const Instance instance = generate(family, 9, 3, seed);
      const ExactResult exact = exact_makespan(instance);
      if (!exact.optimal) continue;
      const AlgoResult approx = three_halves(instance);
      const double ratio = approx.schedule.makespan(instance) /
                           static_cast<double>(exact.makespan);
      worst = std::max(worst, ratio);
      mean += ratio;
      ++samples;
    }
    if (samples > 0) mean /= samples;
  }
  state.counters["ratio_vs_opt_mean"] = mean;
  state.counters["ratio_vs_opt_max"] = worst;
  state.counters["samples"] = samples;
  state.SetLabel(family_name(family));
}
BENCHMARK(BM_ThreeHalvesVsExact)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
