// E15 — online sessions: incremental repair vs full re-solve over
// deterministic churn traces (Poisson and bursty on/off).
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e15_session" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e15_session");
}
