// E10 — ablations of the design choices DESIGN.md calls out:
//
//  (a) the pairing bound p_(m)+p_(m+1) in T (Note 1): how much tighter is
//      the denominator of all ratio experiments with it, i.e. how often does
//      it dominate area/class bounds?
//  (b) Hebrard priority: dynamic largest-remaining-class (ours) vs a static
//      class-sorted order — the measured gap justifies the dynamic rule.
//  (c) list-scheduling priority rules against each other.
#include "algo/baselines.hpp"
#include "algo/greedy.hpp"
#include "bench_common.hpp"

namespace {

using namespace msrs;
using namespace msrs::bench;

// (a) lower-bound component dominance.
void BM_PairBoundDominance(benchmark::State& state) {
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(0))];
  const int machines = static_cast<int>(state.range(1));
  double pair_dominates = 0.0, mean_gain = 0.0;
  for (auto _ : state) {
    pair_dominates = 0.0;
    mean_gain = 0.0;
    int samples = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const Instance instance = generate(family, 8 * machines, machines, seed);
      const LowerBounds bounds = lower_bounds(instance);
      const Time without_pair = std::max(bounds.area, bounds.class_bound);
      if (bounds.pair > without_pair) pair_dominates += 1.0;
      mean_gain += static_cast<double>(bounds.combined) /
                   static_cast<double>(without_pair);
      ++samples;
    }
    pair_dominates /= samples;
    mean_gain /= samples;
  }
  state.counters["pair_dominates_frac"] = pair_dominates;
  state.counters["bound_gain_mean"] = mean_gain;
  state.SetLabel(family_name(family));
}
BENCHMARK(BM_PairBoundDominance)
    ->Args({2, 4})   // huge_heavy
    ->Args({4, 4})   // few_fat
    ->Args({0, 4})   // uniform
    ->Args({8, 4})   // unit
    ->Unit(benchmark::kMillisecond);

// (b) dynamic vs static class-priority insertion.
void BM_HebrardAblation(benchmark::State& state) {
  const bool dynamic = state.range(0) == 1;
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(1))];
  QualityRow row;
  for (auto _ : state) {
    row = quality_row(
        [&](const Instance& instance) {
          return dynamic
                     ? hebrard_insertion(instance)
                     : list_schedule(instance, ListPriority::kClassLoadDesc);
        },
        family, 120, 6, 10);
  }
  report(state, row);
  state.SetLabel(std::string(dynamic ? "dynamic" : "static") + "/" +
                 family_name(family));
}
BENCHMARK(BM_HebrardAblation)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({0, 5})
    ->Args({1, 5})
    ->Args({0, 6})
    ->Args({1, 6})
    ->Unit(benchmark::kMillisecond);

// (c) list-scheduling priority rules.
void BM_ListPriorityAblation(benchmark::State& state) {
  const auto priority = static_cast<ListPriority>(state.range(0));
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(1))];
  QualityRow row;
  for (auto _ : state) {
    row = quality_row(
        [&](const Instance& instance) {
          return list_schedule(instance, priority);
        },
        family, 120, 6, 10);
  }
  report(state, row);
  const char* names[] = {"input", "lpt", "class_desc"};
  state.SetLabel(std::string(names[state.range(0)]) + "/" +
                 family_name(family));
}
BENCHMARK(BM_ListPriorityAblation)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({0, 6})
    ->Args({1, 6})
    ->Args({2, 6})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
