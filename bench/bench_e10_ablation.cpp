// E10 — design-choice ablations (pair bound, Hebrard rule, priorities).
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e10_ablation" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e10_ablation");
}
