// bench_all — the whole perf-harness registry in one binary.
//
//   ./build/bench_all --json out/              # deterministic BENCH_*.json
//   ./build/bench_all --timing --json out/     # + ns/op (baseline refresh)
//   ./build/bench_all --timing --baseline=bench/baseline   # regression gate
//   ./build/bench_all e4 --timing --repeats=9  # one case, more repeats
//
// See docs/benchmarking.md for the schema and the baseline workflow.
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, /*default_filter=*/"");
}
