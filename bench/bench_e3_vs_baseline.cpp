// E3 — paper Section 1 ("Results"): the 5/3- and 3/2-approximations beat
// the prior (2m/(m+1))-approximations once m >= 6 resp. m >= 4. This bench
// sweeps m and reports measured ratios per algorithm together with the
// theoretical 2m/(m+1) curve; the crossovers appear both in the guarantees
// and in the measured worst cases on the adversarial family.
#include "bench_common.hpp"
#include "engine/registry.hpp"

namespace {

using namespace msrs;
using namespace msrs::bench;

const char* kAlgoNames[] = {"merge_lpt", "hebrard", "five_thirds",
                            "three_halves"};

// All four contenders are dispatched through the engine's SolverRegistry —
// this bench doubles as a smoke test that the registry path carries the
// same traffic as the former free-function calls.
AlgoResult run_algo(int which, const Instance& instance) {
  const engine::Solver* solver =
      engine::SolverRegistry::default_registry().find(kAlgoNames[which]);
  engine::SolverResult result = solver->solve(instance);
  AlgoResult out;
  out.schedule = std::move(result.schedule);
  out.lower_bound = result.lower_bound;
  out.name = result.solver;
  return out;
}

void BM_VsBaseline(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const int machines = static_cast<int>(state.range(1));
  QualityRow row;
  for (auto _ : state) {
    // Aggregate over the two families where class merging hurts most plus a
    // neutral one.
    QualityRow adv = quality_row(
        [&](const Instance& i) { return run_algo(which, i); },
        Family::kAdversarialLpt, 12 * machines, machines, 10);
    QualityRow fat = quality_row(
        [&](const Instance& i) { return run_algo(which, i); },
        Family::kFewFatClasses, 10 * machines, machines, 10);
    QualityRow uni = quality_row(
        [&](const Instance& i) { return run_algo(which, i); },
        Family::kUniform, 10 * machines, machines, 10);
    row.ratio_mean = (adv.ratio_mean + fat.ratio_mean + uni.ratio_mean) / 3.0;
    row.ratio_max = std::max({adv.ratio_max, fat.ratio_max, uni.ratio_max});
    row.invalid = adv.invalid + fat.invalid + uni.invalid;
    row.seeds = 30;
  }
  report(state, row);
  state.counters["guarantee"] =
      which == 0 || which == 1
          ? 2.0 * machines / (machines + 1.0)
          : (which == 2 ? 5.0 / 3.0 : 1.5);
  state.SetLabel(std::string(kAlgoNames[which]) + "/m=" +
                 std::to_string(machines));
}

void args(benchmark::internal::Benchmark* bench) {
  for (int which = 0; which < 4; ++which)
    for (int m : {2, 3, 4, 6, 8, 12, 16}) bench->Args({which, m});
}
BENCHMARK(BM_VsBaseline)->Apply(args)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
