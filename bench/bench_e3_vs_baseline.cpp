// E3 — the 5/3- and 3/2-approximations vs the prior (2m/(m+1)) baselines.
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e3_vs_baseline" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e3_vs_baseline");
}
