// Shared helpers for the experiment benches (EXPERIMENTS.md E1-E9).
//
// Quality experiments report their table rows through google-benchmark
// counters: one benchmark invocation = one row; counters are the measured
// columns (ratio_mean, ratio_max, ...). Timing experiments use
// google-benchmark's own timing machinery.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "algo/common.hpp"
#include "core/lower_bounds.hpp"
#include "core/validate.hpp"
#include "sim/workloads.hpp"
#include "util/stats.hpp"

namespace msrs::bench {

using AlgoFn = std::function<AlgoResult(const Instance&)>;

struct QualityRow {
  double ratio_mean = 0.0;  // makespan / T (combined lower bound)
  double ratio_max = 0.0;
  double invalid = 0.0;     // count of validation failures (must be 0)
  double seeds = 0.0;
};

// Runs `algorithm` over the seed corpus of `base` (sim/generator.hpp,
// seeds 1..seeds) and aggregates ratios versus the combined lower bound.
inline QualityRow quality_row(const AlgoFn& algorithm,
                              const GeneratorSpec& base, int seeds) {
  QualityRow row;
  std::vector<double> ratios;
  for (const CorpusEntry& entry : seed_corpus(base, seeds)) {
    const Instance& instance = entry.instance;
    const AlgoResult result = algorithm(instance);
    if (!is_valid(instance, result.schedule)) {
      row.invalid += 1.0;
      continue;
    }
    const Time T = lower_bounds(instance).combined;
    ratios.push_back(result.schedule.makespan(instance) /
                     static_cast<double>(T));
  }
  const Summary summary = summarize(ratios);
  row.ratio_mean = summary.mean;
  row.ratio_max = summary.max;
  row.seeds = static_cast<double>(seeds);
  return row;
}

// Legacy shape: (family, jobs, machines) with default sizing.
inline QualityRow quality_row(const AlgoFn& algorithm, Family family, int jobs,
                              int machines, int seeds) {
  GeneratorSpec base;
  base.family = family;
  base.jobs = jobs;
  base.machines = machines;
  return quality_row(algorithm, base, seeds);
}

inline void report(benchmark::State& state, const QualityRow& row) {
  state.counters["ratio_mean"] = row.ratio_mean;
  state.counters["ratio_max"] = row.ratio_max;
  state.counters["invalid"] = row.invalid;
  state.counters["seeds"] = row.seeds;
}

}  // namespace msrs::bench
