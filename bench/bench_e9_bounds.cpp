// E9 — Note 1 / Lemma 9: tightness of the lower bounds. How close are the
// combined bound of Note 1 and the Lemma-9 census bound T to the true
// optimum on exhaustively solvable instances? (OPT/T close to 1 means the
// approximation ratios measured elsewhere are not artifacts of weak bounds.)
#include "algo/exact.hpp"
#include "algo/t_bound.hpp"
#include "bench_common.hpp"

namespace {

using namespace msrs;
using namespace msrs::bench;

void BM_BoundTightness(benchmark::State& state) {
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(0))];
  double combined_mean = 0.0, lemma9_mean = 0.0, worst = 1.0;
  int samples = 0;
  for (auto _ : state) {
    combined_mean = 0.0;
    lemma9_mean = 0.0;
    worst = 1.0;
    samples = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const Instance instance = generate(family, 9, 3, seed);
      const ExactResult exact = exact_makespan(instance);
      if (!exact.optimal) continue;
      const double opt = static_cast<double>(exact.makespan);
      const double combined =
          static_cast<double>(lower_bounds(instance).combined);
      const double lemma9 = static_cast<double>(three_halves_bound(instance));
      combined_mean += opt / combined;
      lemma9_mean += opt / lemma9;
      worst = std::max(worst, opt / combined);
      ++samples;
    }
    if (samples > 0) {
      combined_mean /= samples;
      lemma9_mean /= samples;
    }
  }
  state.counters["opt_over_note1_mean"] = combined_mean;
  state.counters["opt_over_lemma9_mean"] = lemma9_mean;
  state.counters["opt_over_note1_max"] = worst;
  state.counters["samples"] = samples;
  state.SetLabel(family_name(family));
}
BENCHMARK(BM_BoundTightness)->DenseRange(0, 8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
