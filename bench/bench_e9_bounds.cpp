// E9 — Note 1 / Lemma 9: tightness of the lower bounds vs OPT.
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e9_bounds" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e9_bounds");
}
