// E5 — Theorem 22: N-fold IP augmentation runtime over the block count N.
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e5_nfold" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e5_nfold");
}
