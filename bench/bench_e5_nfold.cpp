// E5 — N-fold IP machinery (paper Section 4.2 / Theorem 22): the
// augmentation solver's runtime grows near-linearly in the number of blocks
// N for fixed r, s, t, Delta. Timing sweep over N on the scheduling-toy
// family used in the tests; plus a feasibility-phase-only sweep.
#include <benchmark/benchmark.h>

#include "opt/nfold.hpp"

namespace {

using namespace msrs;

NFold make_toy(int N, std::int64_t target) {
  NFold problem;
  problem.r = 1;
  problem.s = 1;
  problem.t = 2;
  problem.N = N;
  for (int i = 0; i < N; ++i) {
    problem.A.push_back({1, 0});
    problem.B.push_back({1, -1});
  }
  problem.b.assign(static_cast<std::size_t>(1 + N), 0);
  problem.b[0] = target;
  problem.lower.assign(static_cast<std::size_t>(2 * N), 0);
  problem.upper.assign(static_cast<std::size_t>(2 * N), 3);
  problem.c.assign(static_cast<std::size_t>(2 * N), 0);
  for (int i = 0; i < N; ++i)
    problem.c[static_cast<std::size_t>(2 * i)] = (i % 3) + 1;
  return problem;
}

void BM_NFoldSolve(benchmark::State& state) {
  const int N = static_cast<int>(state.range(0));
  const NFold problem = make_toy(N, 2 * N / 3);
  std::uint64_t iterations = 0;
  bool feasible = false;
  for (auto _ : state) {
    const NFoldResult result = solve_nfold(problem);
    iterations = result.iterations;
    feasible = result.feasible;
    benchmark::DoNotOptimize(result.objective);
  }
  state.counters["aug_iterations"] = static_cast<double>(iterations);
  state.counters["feasible"] = feasible ? 1.0 : 0.0;
  state.SetComplexityN(N);
}
BENCHMARK(BM_NFoldSolve)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

// Feasibility-only (c empty): phase 1 alone.
void BM_NFoldFeasibility(benchmark::State& state) {
  const int N = static_cast<int>(state.range(0));
  NFold problem = make_toy(N, N);
  problem.c.clear();
  for (auto _ : state) {
    const NFoldResult result = solve_nfold(problem);
    benchmark::DoNotOptimize(result.feasible);
  }
  state.SetComplexityN(N);
}
BENCHMARK(BM_NFoldFeasibility)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
