// E8 — total-completion-time extension: SPT vs the relaxation bound.
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e8_completion" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e8_completion");
}
