// E8 — total-completion-time variant (paper Section 1 related work,
// Janssen et al.): SPT list scheduling versus the relaxation lower bound
// per family; the (2 - 1/m) guarantee is relative to OPT, so measured
// ratios versus the (weaker) bound may exceed it slightly — the shape to
// check is that ratios shrink as m grows and stay well under 2x-ish.
#include "bench_common.hpp"
#include "ext/completion_time.hpp"

namespace {

using namespace msrs;
using namespace msrs::bench;

void BM_SptCompletion(benchmark::State& state) {
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(0))];
  const int machines = static_cast<int>(state.range(1));
  double ratio_mean = 0.0, ratio_max = 0.0;
  for (auto _ : state) {
    std::vector<double> ratios;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const Instance instance = generate(family, 20 * machines, machines, seed);
      const AlgoResult result = spt_completion(instance);
      const double objective = total_completion_time(instance, result.schedule);
      const double bound =
          static_cast<double>(completion_time_lower_bound(instance));
      ratios.push_back(objective / bound);
    }
    const Summary summary = summarize(ratios);
    ratio_mean = summary.mean;
    ratio_max = summary.max;
  }
  state.counters["ratio_mean"] = ratio_mean;
  state.counters["ratio_max"] = ratio_max;
  state.counters["two_minus_1_over_m"] = 2.0 - 1.0 / machines;
  state.SetLabel(family_name(family));
}

void args(benchmark::internal::Benchmark* bench) {
  for (int family : {0, 1, 3, 5, 6}) // uniform, bimodal, many_small, satellite, photolith
    for (int machines : {2, 4, 8}) bench->Args({family, machines});
}
BENCHMARK(BM_SptCompletion)->Apply(args)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
