// E12 — generator subsystem: spec parsing, corpus generation throughput,
// and BatchEngine-backed sweep evaluation.
//
// BM_Generate sweeps every family at a fixed size and reports generated
// instances/sec (the generator must never be the bottleneck of a sweep).
// BM_SweepEvaluate runs a full grid (families x sizes x seeds) through
// evaluate_corpus and reports the deterministic quality columns as
// counters, so regressions in either the generator shapes or the portfolio
// show up as counter drift, not just time drift.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "sim/workloads.hpp"

namespace {

using namespace msrs;

void BM_SpecParse(benchmark::State& state) {
  const std::string text = "huge_heavy:n=5000,m=32,classes=zipf(1.2),seed=7";
  for (auto _ : state) {
    auto spec = parse_spec(text);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpecParse);

void BM_Generate(benchmark::State& state) {
  GeneratorSpec spec;
  spec.family = kAllFamilies[static_cast<std::size_t>(state.range(0))];
  spec.jobs = static_cast<int>(state.range(1));
  spec.machines = 8;
  std::uint64_t seed = 1;
  int jobs = 0;
  for (auto _ : state) {
    spec.seed = seed++;
    const Instance instance = generate(spec);
    benchmark::DoNotOptimize(instance.total_load());
    jobs = instance.num_jobs();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["jobs"] = jobs;
  state.SetLabel(std::string(family_name(spec.family)) + "/n=" +
                 std::to_string(spec.jobs));
}
void generate_args(benchmark::internal::Benchmark* bench) {
  for (std::size_t f = 0; f < std::size(kAllFamilies); ++f)
    bench->Args({static_cast<long>(f), 1000});
}
BENCHMARK(BM_Generate)->Apply(generate_args);

void BM_SweepEvaluate(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  SweepSpec sweep;
  sweep.families = {Family::kUniform,       Family::kHugeHeavy,
                    Family::kSatellite,     Family::kPhotolith,
                    Family::kLemma9Tight,   Family::kSingleDominant,
                    Family::kBoundary,      Family::kAdversarialLpt};
  sweep.jobs = {40, 80, 160};
  sweep.machines = {8};
  sweep.seeds = 5;

  std::vector<std::string> groups;
  std::vector<Instance> instances;
  std::vector<CorpusEntry> corpus = make_corpus(sweep);
  groups.reserve(corpus.size());
  instances.reserve(corpus.size());
  for (CorpusEntry& entry : corpus) {
    groups.push_back(family_name(entry.spec.family));
    instances.push_back(std::move(entry.instance));
  }

  engine::BatchOptions options;
  options.threads = threads;
  double ratio_mean = 0.0, ratio_max = 0.0, invalid = 0.0;
  for (auto _ : state) {
    const engine::CorpusReport report = engine::evaluate_corpus(
        groups, instances, engine::SolverRegistry::default_registry(),
        options);
    benchmark::DoNotOptimize(report.results.data());
    double sum = 0.0;
    ratio_max = 0.0;
    invalid = 0.0;
    for (const engine::GroupReport& group : report.groups) {
      sum += group.ratio_mean;
      ratio_max = std::max(ratio_max, group.ratio_max);
      invalid += static_cast<double>(group.invalid);
    }
    ratio_mean = sum / static_cast<double>(report.groups.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(instances.size()));
  state.counters["ratio_mean"] = ratio_mean;
  state.counters["ratio_max"] = ratio_max;
  state.counters["invalid"] = invalid;
  state.SetLabel("t=" + std::to_string(threads));
}
BENCHMARK(BM_SweepEvaluate)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
