// E12 — generator subsystem throughput and sweep evaluation.
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e12_generator" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e12_generator");
}
