// E1 — Theorem 2: Algorithm_5/3 quality per family (and vs the exact optimum).
//
// Thin wrapper over the shared perf harness (src/perf): runs the
// registered "e1_ratio_53" case; all flags of perf::bench_main apply
// (--json, --timing, --baseline, ... — see docs/benchmarking.md).
#include "perf/cli.hpp"

int main(int argc, char** argv) {
  return msrs::perf::bench_main(argc, argv, "e1_ratio_53");
}
