// E1 — Theorem 2: Algorithm_5/3 stays within 5/3 of the lower bound T on
// every workload family (and near-optimal on benign ones). One benchmark row
// per (family, n, m); counters are the table columns of EXPERIMENTS.md.
#include "algo/exact.hpp"
#include "algo/five_thirds.hpp"
#include "bench_common.hpp"

namespace {

using namespace msrs;
using namespace msrs::bench;

void BM_FiveThirdsQuality(benchmark::State& state) {
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(0))];
  const int jobs = static_cast<int>(state.range(1));
  const int machines = static_cast<int>(state.range(2));
  QualityRow row;
  for (auto _ : state)
    row = quality_row([](const Instance& i) { return five_thirds(i); },
                      family, jobs, machines, /*seeds=*/10);
  report(state, row);
  state.SetLabel(family_name(family));
}

void ratio_args(benchmark::internal::Benchmark* bench) {
  for (int family = 0; family < 9; ++family) {
    bench->Args({family, 60, 4});
    bench->Args({family, 240, 8});
    bench->Args({family, 1000, 16});
  }
}
BENCHMARK(BM_FiveThirdsQuality)->Apply(ratio_args)->Unit(benchmark::kMillisecond);

// Ratio against the true optimum on exhaustively solvable instances.
void BM_FiveThirdsVsExact(benchmark::State& state) {
  const Family family = kAllFamilies[static_cast<std::size_t>(state.range(0))];
  double worst = 1.0, mean = 0.0;
  int samples = 0;
  for (auto _ : state) {
    worst = 1.0;
    mean = 0.0;
    samples = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const Instance instance = generate(family, 9, 3, seed);
      const ExactResult exact = exact_makespan(instance);
      if (!exact.optimal) continue;
      const AlgoResult approx = five_thirds(instance);
      const double ratio = approx.schedule.makespan(instance) /
                           static_cast<double>(exact.makespan);
      worst = std::max(worst, ratio);
      mean += ratio;
      ++samples;
    }
    if (samples > 0) mean /= samples;
  }
  state.counters["ratio_vs_opt_mean"] = mean;
  state.counters["ratio_vs_opt_max"] = worst;
  state.counters["samples"] = samples;
  state.SetLabel(family_name(family));
}
BENCHMARK(BM_FiveThirdsVsExact)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
